// Package script defines control scripts: the currency between the Synthesis
// and Controller layers (command scripts) and between the Controller and
// Broker layers (calls). A script is an ordered list of commands, each with
// an operation, a target and named arguments.
//
// The package also provides a canonical textual form used both as a codec
// and as the normalised trace format with which the experiments check
// behavioural equivalence between middleware implementations (paper §VII-A).
package script

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Command is a single operation of a control script.
type Command struct {
	// Op is the operation name, e.g. "createConnection".
	Op string
	// Target addresses the entity operated on, e.g. "session:s1".
	Target string
	// Args carries named parameters. Values are string, float64 or bool.
	Args map[string]any
}

// NewCommand builds a command with no arguments. Args stays nil until the
// first WithArg: commands on the event hot path mostly carry none, and
// every accessor treats a nil map as empty.
func NewCommand(op, target string) Command {
	return Command{Op: op, Target: target}
}

// WithArg returns a copy of the command with the argument set.
func (c Command) WithArg(key string, v any) Command {
	args := make(map[string]any, len(c.Args)+1)
	for k, val := range c.Args {
		args[k] = val
	}
	switch n := v.(type) {
	case int:
		v = float64(n)
	case int64:
		v = float64(n)
	}
	args[key] = v
	c.Args = args
	return c
}

// Arg returns the named argument and whether it is present.
func (c Command) Arg(key string) (any, bool) {
	v, ok := c.Args[key]
	return v, ok
}

// StringArg returns the named argument as a string ("" when absent).
func (c Command) StringArg(key string) string {
	s, _ := c.Args[key].(string)
	return s
}

// NumArg returns the named argument as a float64 (0 when absent).
func (c Command) NumArg(key string) float64 {
	f, _ := c.Args[key].(float64)
	return f
}

// BoolArg returns the named argument as a bool (false when absent).
func (c Command) BoolArg(key string) bool {
	b, _ := c.Args[key].(bool)
	return b
}

// String renders the command in canonical text form:
// op target k1=v1 k2=v2 with keys sorted.
func (c Command) String() string {
	var sb strings.Builder
	sb.WriteString(c.Op)
	if c.Target != "" {
		sb.WriteByte(' ')
		sb.WriteString(c.Target)
	}
	keys := make([]string, 0, len(c.Args))
	for k := range c.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteByte(' ')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(formatValue(c.Args[k]))
	}
	return sb.String()
}

func formatValue(v any) string {
	switch n := v.(type) {
	case string:
		return strconv.Quote(n)
	case float64:
		return strconv.FormatFloat(n, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(n)
	default:
		return strconv.Quote(fmt.Sprintf("%v", n))
	}
}

// Script is an ordered command sequence with an identity.
type Script struct {
	ID       string
	Commands []Command
}

// New creates an empty script.
func New(id string) *Script { return &Script{ID: id} }

// Append adds commands to the script and returns it for chaining.
func (s *Script) Append(cmds ...Command) *Script {
	s.Commands = append(s.Commands, cmds...)
	return s
}

// Len returns the number of commands.
func (s *Script) Len() int { return len(s.Commands) }

// String renders the script, one command per line.
func (s *Script) String() string {
	lines := make([]string, len(s.Commands))
	for i, c := range s.Commands {
		lines[i] = c.String()
	}
	return strings.Join(lines, "\n")
}

// Format renders the script including a header line with its ID, suitable
// for file storage. Parse reverses it.
func Format(s *Script) string {
	var sb strings.Builder
	sb.WriteString("script ")
	sb.WriteString(s.ID)
	sb.WriteByte('\n')
	for _, c := range s.Commands {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Parse reads the textual form produced by Format. Blank lines and lines
// starting with # are ignored.
func Parse(text string) (*Script, error) {
	var s *Script
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "script ") {
			if s != nil {
				return nil, fmt.Errorf("line %d: duplicate script header", lineNo+1)
			}
			s = New(strings.TrimSpace(strings.TrimPrefix(line, "script ")))
			continue
		}
		if s == nil {
			return nil, fmt.Errorf("line %d: command before script header", lineNo+1)
		}
		cmd, err := ParseCommand(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		s.Append(cmd)
	}
	if s == nil {
		return nil, fmt.Errorf("no script header found")
	}
	return s, nil
}

// ParseCommand parses one command in canonical text form.
func ParseCommand(line string) (Command, error) {
	fields, err := splitFields(line)
	if err != nil {
		return Command{}, err
	}
	if len(fields) == 0 {
		return Command{}, fmt.Errorf("empty command")
	}
	cmd := NewCommand(fields[0], "")
	rest := fields[1:]
	if len(rest) > 0 && !strings.Contains(rest[0], "=") {
		cmd.Target = rest[0]
		rest = rest[1:]
	}
	for _, f := range rest {
		k, v, found := strings.Cut(f, "=")
		if !found || k == "" {
			return Command{}, fmt.Errorf("bad argument %q", f)
		}
		if cmd.Args == nil {
			cmd.Args = make(map[string]any)
		}
		cmd.Args[k] = parseValue(v)
	}
	return cmd, nil
}

// splitFields splits on spaces, honouring double-quoted segments.
func splitFields(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == '\\' && inQuote && i+1 < len(line):
			cur.WriteByte(c)
			i++
			cur.WriteByte(line[i])
		case c == ' ' && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote in %q", line)
	}
	flush()
	return fields, nil
}

// ParseScalar interprets a textual value the way command arguments are
// parsed: quoted strings unquote, "true"/"false" become booleans, numbers
// become float64, anything else stays a string.
func ParseScalar(text string) any { return parseValue(text) }

func parseValue(text string) any {
	if len(text) >= 2 && text[0] == '"' {
		if s, err := strconv.Unquote(text); err == nil {
			return s
		}
		return strings.Trim(text, `"`)
	}
	switch text {
	case "true":
		return true
	case "false":
		return false
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return f
	}
	return text
}

// Trace is a recorded sequence of executed commands in canonical form. The
// behavioural-equivalence experiment compares traces of the model-based and
// handcrafted Broker implementations.
type Trace struct {
	lines []string
}

// Record appends a command to the trace.
func (t *Trace) Record(c Command) { t.lines = append(t.lines, c.String()) }

// RecordOp is a convenience that records an op/target pair with arguments
// given as alternating key, value pairs.
func (t *Trace) RecordOp(op, target string, kv ...any) {
	c := NewCommand(op, target)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprintf("%v", kv[i])
		}
		c = c.WithArg(key, kv[i+1])
	}
	t.Record(c)
}

// Len returns the number of recorded commands.
func (t *Trace) Len() int { return len(t.lines) }

// Reset discards the recorded commands, keeping the capacity. Long-running
// measurements reset between iterations so trace growth does not skew
// timings.
func (t *Trace) Reset() { t.lines = t.lines[:0] }

// Lines returns a copy of the canonical command lines.
func (t *Trace) Lines() []string { return append([]string(nil), t.lines...) }

// String joins the trace lines.
func (t *Trace) String() string { return strings.Join(t.lines, "\n") }

// Equal reports whether two traces recorded identical command sequences.
func (t *Trace) Equal(other *Trace) bool {
	if len(t.lines) != len(other.lines) {
		return false
	}
	for i := range t.lines {
		if t.lines[i] != other.lines[i] {
			return false
		}
	}
	return true
}

// FirstDiff returns the index and the two lines of the first difference, or
// -1 when the traces are equal. Useful in test failure messages.
func (t *Trace) FirstDiff(other *Trace) (int, string, string) {
	n := len(t.lines)
	if len(other.lines) < n {
		n = len(other.lines)
	}
	for i := 0; i < n; i++ {
		if t.lines[i] != other.lines[i] {
			return i, t.lines[i], other.lines[i]
		}
	}
	if len(t.lines) != len(other.lines) {
		a, b := "<end>", "<end>"
		if n < len(t.lines) {
			a = t.lines[n]
		}
		if n < len(other.lines) {
			b = other.lines[n]
		}
		return n, a, b
	}
	return -1, "", ""
}
