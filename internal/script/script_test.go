package script

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCommandString(t *testing.T) {
	c := NewCommand("createConnection", "session:s1").
		WithArg("media", "audio").
		WithArg("bandwidth", 64).
		WithArg("secure", true)
	want := `createConnection session:s1 bandwidth=64 media="audio" secure=true`
	if got := c.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestCommandArgsAccessors(t *testing.T) {
	c := NewCommand("op", "t").WithArg("s", "x").WithArg("n", 3).WithArg("b", true)
	if c.StringArg("s") != "x" || c.NumArg("n") != 3 || !c.BoolArg("b") {
		t.Error("typed accessors")
	}
	if c.StringArg("nope") != "" || c.NumArg("nope") != 0 || c.BoolArg("nope") {
		t.Error("absent args give zero values")
	}
	if v, ok := c.Arg("s"); !ok || v != "x" {
		t.Error("Arg")
	}
	if _, ok := c.Arg("zz"); ok {
		t.Error("Arg absence")
	}
}

func TestWithArgDoesNotMutate(t *testing.T) {
	c1 := NewCommand("op", "t").WithArg("a", 1)
	c2 := c1.WithArg("b", 2)
	if _, ok := c1.Arg("b"); ok {
		t.Error("WithArg must copy the args map")
	}
	if _, ok := c2.Arg("a"); !ok {
		t.Error("WithArg must preserve prior args")
	}
}

func TestWithArgIntWidening(t *testing.T) {
	c := NewCommand("op", "t").WithArg("i", 7).WithArg("i64", int64(9))
	if c.NumArg("i") != 7 || c.NumArg("i64") != 9 {
		t.Error("ints must widen to float64")
	}
}

func TestScriptFormatParseRoundtrip(t *testing.T) {
	s := New("sc1").Append(
		NewCommand("open", "dev:1").WithArg("rate", 2.5),
		NewCommand("send", "dev:1").WithArg("payload", `hello "world"`).WithArg("urgent", false),
		NewCommand("noTarget", "").WithArg("k", "v"),
		NewCommand("bare", "x"),
	)
	text := Format(s)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if back.ID != "sc1" || back.Len() != s.Len() {
		t.Fatalf("round trip: %+v", back)
	}
	for i := range s.Commands {
		if got, want := back.Commands[i].String(), s.Commands[i].String(); got != want {
			t.Errorf("cmd %d: got %q want %q", i, got, want)
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	text := "\n# comment\nscript s\n\nop target k=1\n# another\n"
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Commands[0].Op != "op" {
		t.Fatalf("%+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                        // no header
		"op t k=1",                // command before header
		"script a\nscript b",      // duplicate header
		"script a\nop t =v",       // empty key
		"script a\nop t \"unterm", // unterminated quote
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestParseCommandForms(t *testing.T) {
	c, err := ParseCommand(`dial peer:alice mode="video" retries=3 fast=true raw=unquoted`)
	if err != nil {
		t.Fatal(err)
	}
	if c.Op != "dial" || c.Target != "peer:alice" {
		t.Fatalf("%+v", c)
	}
	if c.StringArg("mode") != "video" || c.NumArg("retries") != 3 || !c.BoolArg("fast") {
		t.Errorf("args: %+v", c.Args)
	}
	if c.Args["raw"] != "unquoted" {
		t.Errorf("bare value should stay string: %v", c.Args["raw"])
	}
	if _, err := ParseCommand(""); err == nil {
		t.Error("empty command must fail")
	}
}

func TestTraceEqualityAndDiff(t *testing.T) {
	var a, b Trace
	a.RecordOp("open", "d1", "rate", 2)
	a.RecordOp("send", "d1", "n", 1)
	b.RecordOp("open", "d1", "rate", 2)
	b.RecordOp("send", "d1", "n", 1)
	if !a.Equal(&b) {
		t.Fatal("identical traces must be equal")
	}
	if i, _, _ := a.FirstDiff(&b); i != -1 {
		t.Fatal("FirstDiff on equal traces must be -1")
	}
	b.RecordOp("close", "d1")
	if a.Equal(&b) {
		t.Fatal("length mismatch must not be equal")
	}
	if i, x, y := a.FirstDiff(&b); i != 2 || x != "<end>" || y == "" {
		t.Fatalf("FirstDiff tail: %d %q %q", i, x, y)
	}
	var c Trace
	c.RecordOp("open", "d2", "rate", 2)
	if i, _, _ := a.FirstDiff(&c); i != 0 {
		t.Fatal("FirstDiff should find index 0")
	}
	if a.Len() != 2 || len(a.Lines()) != 2 {
		t.Fatal("Len/Lines")
	}
	if !strings.Contains(a.String(), "\n") {
		t.Fatal("String should join with newlines")
	}
}

func TestTraceRecordOpOddKV(t *testing.T) {
	var tr Trace
	tr.RecordOp("op", "t", "k") // dangling key ignored
	if tr.Lines()[0] != "op t" {
		t.Errorf("got %q", tr.Lines()[0])
	}
	tr.RecordOp("op", "t", 42, "v") // non-string key formatted
	if !strings.Contains(tr.Lines()[1], "42=") {
		t.Errorf("got %q", tr.Lines()[1])
	}
}

// Property: any command built from random ops/targets/args survives a
// format->parse round trip with an identical canonical form.
func TestCommandRoundtripProperty(t *testing.T) {
	letters := "abcdefgXYZ:_-0123456789"
	randWord := func(r *rand.Rand, n int) string {
		var sb strings.Builder
		sb.WriteByte("abcdefg"[r.Intn(7)])
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[r.Intn(len(letters))])
		}
		return sb.String()
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewCommand(randWord(r, 4), randWord(r, 5))
		for i := 0; i < r.Intn(5); i++ {
			key := randWord(r, 3)
			switch r.Intn(3) {
			case 0:
				c = c.WithArg(key, randWord(r, 6)+` "q" \`)
			case 1:
				c = c.WithArg(key, float64(r.Intn(1000))/4)
			default:
				c = c.WithArg(key, r.Intn(2) == 0)
			}
		}
		back, err := ParseCommand(c.String())
		if err != nil {
			t.Logf("seed %d: parse error %v for %q", seed, err, c.String())
			return false
		}
		return back.String() == c.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCommandString(b *testing.B) {
	c := NewCommand("createConnection", "session:s1").
		WithArg("media", "audio").WithArg("bandwidth", 64).WithArg("secure", true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.String()
	}
}

func TestScriptString(t *testing.T) {
	s := New("s").Append(NewCommand("a", "t1"), NewCommand("b", "t2"))
	if s.String() != "a t1\nb t2" {
		t.Errorf("got %q", s.String())
	}
}

func TestParseScalar(t *testing.T) {
	tests := []struct {
		in   string
		want any
	}{
		{"1.5", 1.5},
		{"true", true},
		{"false", false},
		{`"quoted"`, "quoted"},
		{"bare", "bare"},
	}
	for _, tt := range tests {
		if got := ParseScalar(tt.in); got != tt.want {
			t.Errorf("ParseScalar(%q) = %v", tt.in, got)
		}
	}
}

func TestTraceReset(t *testing.T) {
	var tr Trace
	tr.RecordOp("a", "t")
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("after reset: %d", tr.Len())
	}
	tr.RecordOp("b", "t")
	if tr.Len() != 1 || tr.Lines()[0] != "b t" {
		t.Errorf("record after reset: %v", tr.Lines())
	}
}
