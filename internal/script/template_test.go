package script

import (
	"testing"

	"github.com/mddsm/mddsm/internal/expr"
)

func TestTemplateExpand(t *testing.T) {
	tpl := Template{
		Op:     "open{Kind}",
		Target: "dev:{id}",
		Args: map[string]string{
			"rate":  "{rate}",   // native type preserved
			"label": "r-{rate}", // interpolated to string
			"lit":   "42",       // literal scalar
			"flag":  "true",
			"text":  "plain",
		},
	}
	scope := expr.MapScope{"Kind": "Stream", "id": "d1", "rate": 2.5}
	cmd, err := tpl.Expand(scope)
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Op != "openStream" || cmd.Target != "dev:d1" {
		t.Errorf("op/target: %s %s", cmd.Op, cmd.Target)
	}
	if cmd.NumArg("rate") != 2.5 || cmd.StringArg("label") != "r-2.5" {
		t.Errorf("args: %v", cmd.Args)
	}
	if cmd.NumArg("lit") != 42 || !cmd.BoolArg("flag") || cmd.StringArg("text") != "plain" {
		t.Errorf("literals: %v", cmd.Args)
	}
}

func TestTemplateExpandErrors(t *testing.T) {
	scope := expr.MapScope{}
	if _, err := (Template{Op: "{ghost}", Target: "t"}).Expand(scope); err == nil {
		t.Error("unbound op")
	}
	if _, err := (Template{Op: "op", Target: "{ghost}"}).Expand(scope); err == nil {
		t.Error("unbound target")
	}
	if _, err := (Template{Op: "op", Target: "t", Args: map[string]string{"a": "{ghost}"}}).Expand(scope); err == nil {
		t.Error("unbound arg")
	}
}
