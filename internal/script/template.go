package script

import (
	"strings"

	"github.com/mddsm/mddsm/internal/expr"
)

// Template is a command with {placeholder} holes. Actions in the Broker and
// Controller layers are sequences of templates; the runtime factory builds
// them from middleware-model metadata (the paper's "code templates that are
// parameterized with metadata from the middleware model").
type Template struct {
	Op     string
	Target string
	Args   map[string]string
}

// Expand instantiates the template against a scope. Literal argument values
// (no placeholders) use the command-argument value syntax, so numbers and
// booleans keep their types; single-placeholder values keep the native type
// of the bound value.
func (t Template) Expand(scope expr.Scope) (Command, error) {
	op, err := expr.InterpolateString(t.Op, scope)
	if err != nil {
		return Command{}, err
	}
	target, err := expr.InterpolateString(t.Target, scope)
	if err != nil {
		return Command{}, err
	}
	cmd := NewCommand(op, target)
	for k, tpl := range t.Args {
		var v any
		if strings.Contains(tpl, "{") {
			v, err = expr.Interpolate(tpl, scope)
			if err != nil {
				return Command{}, err
			}
		} else {
			v = ParseScalar(tpl)
		}
		cmd = cmd.WithArg(k, v)
	}
	return cmd, nil
}
