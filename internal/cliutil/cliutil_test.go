package cliutil_test

import (
	"flag"
	"io"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/cliutil"
	"github.com/mddsm/mddsm/internal/metamodel"
)

// newFS builds a silent flag set so expected parse failures don't spam
// test output.
func newFS(t *testing.T) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet(t.Name(), flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// resetMode restores the process-global validation mode after tests that
// install one through -validate-mode.
func resetMode(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { metamodel.SetValidationMode(metamodel.ModeCompiled) })
}

func TestRegisterDefaults(t *testing.T) {
	fs := newFS(t)
	c := cliutil.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Obs || c.Faults != "" || c.ValidateMode != "" {
		t.Fatalf("unset flags not zero: %+v", c)
	}
	o, inj, rcfg, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if o != nil || inj != nil {
		t.Errorf("Resolve without -obs/-faults: obs=%v inj=%v, want nil/nil", o, inj)
	}
	// Without RegisterPump/RegisterValidateCache, Resolve must leave the
	// runtime config untouched — not disable or install a cache.
	if rcfg.PumpShards != 0 || rcfg.ValidationCache != nil || rcfg.DisableValidationCache {
		t.Errorf("unregistered optional flags leaked into config: %+v", rcfg)
	}
}

func TestResolveObsAndFaults(t *testing.T) {
	fs := newFS(t)
	c := cliutil.Register(fs)
	if err := fs.Parse([]string{"-obs", "-faults", "seed=3,broker.step:error:p=1"}); err != nil {
		t.Fatal(err)
	}
	o, inj, _, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("-obs did not produce an obs bundle")
	}
	if inj == nil || inj.Seed() != 3 {
		t.Fatalf("-faults injector wrong: %v", inj)
	}
}

func TestResolveBadFaults(t *testing.T) {
	for _, spec := range []string{"not-a-spec", "seed=x", "site:unknown-kind"} {
		fs := newFS(t)
		c := cliutil.Register(fs)
		if err := fs.Parse([]string{"-faults", spec}); err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		if _, _, _, err := c.Resolve(); err == nil {
			t.Errorf("Resolve accepted bad -faults %q", spec)
		}
	}
}

func TestResolveEmptyFaultsIsNoInjector(t *testing.T) {
	fs := newFS(t)
	c := cliutil.Register(fs)
	if err := fs.Parse([]string{"-faults", ""}); err != nil {
		t.Fatal(err)
	}
	_, inj, _, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Error("explicit empty -faults produced an injector")
	}
}

func TestValidateModeResolution(t *testing.T) {
	resetMode(t)
	for _, mode := range []string{"compiled", "interpreted"} {
		fs := newFS(t)
		c := cliutil.Register(fs)
		if err := fs.Parse([]string{"-validate-mode", mode}); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := c.Resolve(); err != nil {
			t.Errorf("-validate-mode %s: %v", mode, err)
		}
	}
	fs := newFS(t)
	c := cliutil.Register(fs)
	if err := fs.Parse([]string{"-validate-mode", "hypothetical"}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Resolve(); err == nil {
		t.Error("unknown -validate-mode accepted")
	}
	// Empty mode is a documented no-op, not an error.
	c2 := cliutil.Register(newFS(t))
	if err := c2.ApplyValidationMode(); err != nil {
		t.Errorf("empty -validate-mode: %v", err)
	}
}

func TestValidateCacheTiers(t *testing.T) {
	// Tier 1: 0 disables memoised validation outright.
	fs := newFS(t)
	c := cliutil.Register(fs).RegisterValidateCache(fs)
	if err := fs.Parse([]string{"-validate-cache", "0"}); err != nil {
		t.Fatal(err)
	}
	_, _, rcfg, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !rcfg.DisableValidationCache || rcfg.ValidationCache != nil {
		t.Errorf("cache 0: %+v", rcfg)
	}

	// Tier 2: a custom capacity builds a private cache.
	fs = newFS(t)
	c = cliutil.Register(fs).RegisterValidateCache(fs)
	if err := fs.Parse([]string{"-validate-cache", "7"}); err != nil {
		t.Fatal(err)
	}
	_, _, rcfg, err = c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.ValidationCache == nil || rcfg.ValidationCache == metamodel.SharedValidationCache() {
		t.Errorf("custom capacity must build a private cache, got %v", rcfg.ValidationCache)
	}

	// Tier 3: the default capacity resolves to the process-shared cache.
	fs = newFS(t)
	c = cliutil.Register(fs).RegisterValidateCache(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	_, _, rcfg, err = c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.ValidationCache != metamodel.SharedValidationCache() {
		t.Errorf("default capacity must resolve to the shared cache")
	}
}

func TestRegisterPumpShards(t *testing.T) {
	fs := newFS(t)
	c := cliutil.Register(fs).RegisterPump(fs)
	if err := fs.Parse([]string{"-pump-shards", "5"}); err != nil {
		t.Fatal(err)
	}
	_, _, rcfg, err := c.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rcfg.PumpShards != 5 {
		t.Errorf("PumpShards = %d, want 5", rcfg.PumpShards)
	}
}

func TestConflictingFlagCombination(t *testing.T) {
	// -faults with -obs binds fired-fault metrics to the obs bundle; the
	// combination must resolve, and a bad mode must win as the error even
	// when the rest of the flag set is valid.
	resetMode(t)
	fs := newFS(t)
	c := cliutil.Register(fs).RegisterPump(fs).RegisterValidateCache(fs)
	args := []string{"-obs", "-faults", "seed=1,pump.post:drop:p=0.5",
		"-pump-shards", "2", "-validate-cache", "3", "-validate-mode", "nope"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Resolve(); err == nil ||
		!strings.Contains(err.Error(), "validat") {
		t.Errorf("bad mode in a full flag set: err = %v", err)
	}
}

func TestUnknownFlagRejected(t *testing.T) {
	fs := newFS(t)
	cliutil.Register(fs)
	if err := fs.Parse([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
