// Package cliutil is the shared flag surface of the mddsm commands.
// mddsm-run and mddsm-bench used to re-declare the same flags (-obs,
// -faults, -validate-mode, -pump-shards, -validate-cache) with drifting
// help strings and copy-pasted resolution logic; mddsm-serve would have
// been the third copy. The flags register here once, and Resolve turns
// them into the runtime objects every command needs: the observability
// bundle, the fault injector (metrics bound), and a runtime.Config with
// the validation cache and pump sharding folded in.
package cliutil

import (
	"flag"
	"fmt"

	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/runtime"
)

// Common holds the shared flag values. Zero-value fields mean "flag not
// registered or not set".
type Common struct {
	// Obs arms instrumentation (-obs).
	Obs bool
	// Faults is the fault-injection schedule (-faults).
	Faults string
	// ValidateMode forces the conformance validator (-validate-mode).
	ValidateMode string
	// PumpShards is the event-pump shard count (-pump-shards, 0 =
	// GOMAXPROCS).
	PumpShards int
	// ValidateCache is the validation cache capacity (-validate-cache);
	// see RegisterValidateCache for the default/0 semantics.
	ValidateCache int

	pumpRegistered  bool
	cacheRegistered bool
}

// Register installs the flags every command shares: -obs, -faults and
// -validate-mode.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.BoolVar(&c.Obs, "obs", false, "instrument the run and print an observability snapshot")
	fs.StringVar(&c.Faults, "faults", "", `inject faults: "seed=N,site:kind[:p=0.5][:d=10ms][:n=3],..." (see internal/fault)`)
	fs.StringVar(&c.ValidateMode, "validate-mode", "", "conformance validator: compiled, interpreted or delta (default compiled with interpreted fallback; delta re-checks only touched objects per submission)")
	return c
}

// RegisterPump additionally installs -pump-shards.
func (c *Common) RegisterPump(fs *flag.FlagSet) *Common {
	fs.IntVar(&c.PumpShards, "pump-shards", 0, "event-pump shards (0 = GOMAXPROCS); same-source events stay ordered per shard key")
	c.pumpRegistered = true
	return c
}

// RegisterValidateCache additionally installs -validate-cache.
func (c *Common) RegisterValidateCache(fs *flag.FlagSet) *Common {
	fs.IntVar(&c.ValidateCache, "validate-cache", metamodel.DefaultValidationCacheSize,
		"validation cache capacity in models; 0 disables memoised conformance checks")
	c.cacheRegistered = true
	return c
}

// ApplyValidationMode parses -validate-mode and installs it process-wide;
// it is a no-op when the flag is empty. The "delta" mode keeps the
// compiled validator for whole-model checks (delta validation builds on
// its layout tables) and is wired into runtime.Config by Resolve.
func (c *Common) ApplyValidationMode() error {
	switch c.ValidateMode {
	case "":
		return nil
	case "delta":
		metamodel.SetValidationMode(metamodel.ModeCompiled)
		return nil
	}
	mode, err := metamodel.ParseValidationMode(c.ValidateMode)
	if err != nil {
		return err
	}
	metamodel.SetValidationMode(mode)
	return nil
}

// Resolve turns the parsed flags into their runtime objects:
//
//   - the observability bundle (nil without -obs), with the metamodel
//     compile metrics bound;
//   - the fault injector (nil without -faults), its metrics bound to the
//     obs bundle when both are armed;
//   - a runtime.Config carrying -pump-shards and the -validate-cache
//     resolution (shared cache by default, private at a custom capacity,
//     disabled at 0), cache metrics bound likewise.
//
// Resolve also applies -validate-mode; call it once after flag parsing.
func (c *Common) Resolve() (*obs.Obs, *fault.Injector, runtime.Config, error) {
	rcfg := runtime.Config{}
	if err := c.ApplyValidationMode(); err != nil {
		return nil, nil, rcfg, err
	}
	var o *obs.Obs
	if c.Obs {
		o = obs.New()
		metamodel.BindMetrics(o.MetricsOf())
	}

	if c.ValidateMode == "delta" {
		rcfg.DeltaValidation = true
	}
	if c.pumpRegistered {
		rcfg.PumpShards = c.PumpShards
	}
	if c.cacheRegistered {
		switch {
		case c.ValidateCache == 0:
			rcfg.DisableValidationCache = true
		case c.ValidateCache != metamodel.DefaultValidationCacheSize:
			rcfg.ValidationCache = metamodel.NewValidationCache(c.ValidateCache)
		default:
			rcfg.ValidationCache = metamodel.SharedValidationCache()
		}
	}
	if o != nil && rcfg.ValidationCache != nil {
		rcfg.ValidationCache.BindMetrics(o.MetricsOf())
	}

	var inj *fault.Injector
	if c.Faults != "" {
		var err error
		inj, err = fault.Parse(c.Faults)
		if err != nil {
			return nil, nil, rcfg, fmt.Errorf("-faults: %w", err)
		}
		if o != nil {
			inj.BindMetrics(o.MetricsOf())
		}
	}
	return o, inj, rcfg, nil
}
