package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	child := tr.Start("child")
	grand := tr.Start("grand")
	if root.Parent() != 0 {
		t.Errorf("root parent = %d, want 0", root.Parent())
	}
	if child.Parent() != root.ID() {
		t.Errorf("child parent = %d, want %d", child.Parent(), root.ID())
	}
	if grand.Parent() != child.ID() {
		t.Errorf("grand parent = %d, want %d", grand.Parent(), child.ID())
	}
	grand.End()
	child.End()
	// A sibling started after the child ended links to the root again.
	sib := tr.Start("sibling")
	if sib.Parent() != root.ID() {
		t.Errorf("sibling parent = %d, want %d", sib.Parent(), root.ID())
	}
	sib.End()
	root.End()

	for _, name := range []string{"root", "child", "grand", "sibling"} {
		if n := tr.Count(name); n != 1 {
			t.Errorf("Count(%s) = %d, want 1", name, n)
		}
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("Recent() returned %d spans, want 4", len(recent))
	}
	// Ended in order grand, child, sibling, root.
	if recent[0].Name != "grand" || recent[3].Name != "root" {
		t.Errorf("unexpected recent order: %v, %v", recent[0].Name, recent[3].Name)
	}
}

func TestSpanNestingPerGoroutine(t *testing.T) {
	tr := NewTracer()
	// Spans on different goroutines must not become parents of each other.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outer := tr.Start("outer")
			inner := tr.Start("inner")
			if inner.Parent() != outer.ID() {
				t.Errorf("inner parent = %d, want %d", inner.Parent(), outer.ID())
			}
			inner.End()
			outer.End()
		}()
	}
	wg.Wait()
	if n := tr.Count("inner"); n != 8 {
		t.Errorf("Count(inner) = %d, want 8", n)
	}
}

func TestSpanAttrs(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("op")
	sp.SetAttr("key", "value")
	sp.End()
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].Attrs["key"] != "value" {
		t.Fatalf("attr not recorded: %+v", recent)
	}
}

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{time.Microsecond, 0},
		{10 * time.Microsecond, 0},
		{11 * time.Microsecond, 1},
		{100 * time.Microsecond, 1},
		{999 * time.Microsecond, 2},
		{5 * time.Millisecond, 3},
		{99 * time.Millisecond, 4},
		{time.Second, 5},
		{5 * time.Second, 6},
	}
	var h Histogram
	for _, c := range cases {
		if got := bucketIdx(c.d); got != c.want {
			t.Errorf("bucketIdx(%v) = %d, want %d", c.d, got, c.want)
		}
		h.Observe(c.d)
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
	wantBuckets := []int64{2, 2, 1, 1, 1, 1, 1}
	for i, want := range wantBuckets {
		if got := h.Bucket(i); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", i, got, want)
		}
	}
	if h.Mean() <= 0 {
		t.Errorf("Mean = %v, want > 0", h.Mean())
	}
}

func TestConcurrentCounters(t *testing.T) {
	m := NewMetrics()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("shared")
			h := m.Histogram("lat")
			g := m.Gauge("depth")
			for j := 0; j < perWorker; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Microsecond)
				g.Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := m.CounterValue("shared"); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := m.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("histogram samples = %d, want %d", got, workers*perWorker)
	}
	if m.Gauge("depth").Max() != perWorker-1 {
		t.Errorf("gauge max = %d, want %d", m.Gauge("depth").Max(), perWorker-1)
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	var g Gauge
	for _, v := range []int64{3, 7, 2, 7, 1} {
		g.Set(v)
	}
	if g.Value() != 1 {
		t.Errorf("Value = %d, want 1", g.Value())
	}
	if g.Max() != 7 {
		t.Errorf("Max = %d, want 7", g.Max())
	}
}

// TestNopFastPathAllocs asserts the disabled observer's zero-allocation
// fast path: every nil-receiver operation the layers issue per hop must
// not allocate.
func TestNopFastPathAllocs(t *testing.T) {
	var (
		tr *Tracer
		m  *Metrics
		c  *Counter
		g  *Gauge
		h  *Histogram
		o  *Obs
	)
	dyn := strings.Repeat("op", 2) // non-constant: boxing it would allocate
	cases := map[string]func(){
		"tracer-span": func() {
			sp := tr.Start("x")
			sp.SetAttr("k", 1)
			sp.End()
		},
		// Hot paths attach string attributes through SetStr, whose
		// signature avoids the caller-side interface boxing SetAttr
		// would force even on a disabled span.
		"tracer-span-str": func() {
			sp := tr.Start("x")
			sp.SetStr("op", dyn)
			sp.End()
		},
		"counter":   func() { c.Inc(); c.Add(5) },
		"gauge":     func() { g.Set(3) },
		"histogram": func() { h.Observe(time.Millisecond) },
		"registry":  func() { _ = m.Counter("x"); _ = m.Gauge("y"); _ = m.Histogram("z") },
		"bundle":    func() { _ = o.TracerOf(); _ = o.MetricsOf() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run on the no-op path, want 0", name, allocs)
		}
	}
}

func TestSnapshotFormatting(t *testing.T) {
	o := New()
	o.Metrics.Counter(MBrokerSteps).Add(3)
	o.Metrics.Gauge(MQueueDepth).Set(2)
	o.Metrics.Histogram(HPumpDeliver).Observe(50 * time.Microsecond)
	sp := o.Tracer.Start(SpanBrokerCall)
	sp.End()

	snap := o.Snapshot()
	for _, want := range []string{
		MBrokerSteps, MQueueDepth, HPumpDeliver, SpanBrokerCall,
		"# counters", "# spans",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}

	// Disabled observers snapshot without panicking.
	var disabled *Obs
	if got := disabled.Snapshot(); !strings.Contains(got, "disabled") {
		t.Errorf("disabled snapshot = %q", got)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer()
	total := defaultRingCap + 10
	for i := 0; i < total; i++ {
		tr.Start("s").End()
	}
	if n := tr.Count("s"); n != int64(total) {
		t.Errorf("Count = %d, want %d", n, total)
	}
	if n := len(tr.Recent()); n != defaultRingCap {
		t.Errorf("Recent = %d records, want %d", n, defaultRingCap)
	}
}

func TestMetricsEachVisitsSorted(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.two").Add(2)
	m.Counter("a.one").Inc()
	m.Gauge("z.depth").Set(7)
	m.Histogram("lat").Observe(time.Millisecond)

	var counters, gauges, hists []string
	m.Each(
		func(name string, c *Counter) { counters = append(counters, fmt.Sprintf("%s=%d", name, c.Value())) },
		func(name string, g *Gauge) { gauges = append(gauges, fmt.Sprintf("%s=%d", name, g.Value())) },
		func(name string, h *Histogram) { hists = append(hists, fmt.Sprintf("%s=%d", name, h.Count())) },
	)
	if got, want := strings.Join(counters, ","), "a.one=1,b.two=2"; got != want {
		t.Errorf("counters = %q, want %q", got, want)
	}
	if got, want := strings.Join(gauges, ","), "z.depth=7"; got != want {
		t.Errorf("gauges = %q, want %q", got, want)
	}
	if got, want := strings.Join(hists, ","), "lat=1"; got != want {
		t.Errorf("histograms = %q, want %q", got, want)
	}

	// A disabled registry and nil callbacks are both no-ops.
	var disabled *Metrics
	disabled.Each(func(string, *Counter) { t.Error("disabled registry visited") }, nil, nil)
	m.Each(nil, nil, nil)
}

func TestHistogramSumAndBounds(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	if got := h.Sum(); got != 4*time.Millisecond {
		t.Errorf("Sum = %v, want 4ms", got)
	}
	var nilH *Histogram
	if nilH.Sum() != 0 {
		t.Error("nil histogram Sum != 0")
	}

	// Bounds are finite for all but the overflow bucket, and ascending.
	prev := 0.0
	for i := 0; i < HistBuckets-1; i++ {
		sec, ok := HistBoundSeconds(i)
		if !ok {
			t.Fatalf("bucket %d reported unbounded", i)
		}
		if sec <= prev {
			t.Fatalf("bucket bounds not ascending at %d: %g <= %g", i, sec, prev)
		}
		prev = sec
	}
	if _, ok := HistBoundSeconds(HistBuckets - 1); ok {
		t.Error("overflow bucket reported a finite bound")
	}
	if _, ok := HistBoundSeconds(-1); ok {
		t.Error("negative index reported a finite bound")
	}
}
