// Package obs is the engine's zero-dependency observability layer: trace
// spans around every cross-layer hop (UI submit → Synthesis → Controller
// dispatch → Broker step → resource adapter execute, plus the runtime event
// pump and the autonomic monitor loop) and process-wide metrics (atomic
// counters, gauges and fixed-bucket latency histograms).
//
// The package is designed so a disabled observer costs the hot path only a
// nil check: nil *Tracer, *Metrics, *Counter, *Gauge and *Histogram are all
// valid receivers whose methods return immediately, and Span is a small
// value type, so the no-op path performs zero allocations. Layers resolve
// their counters once at construction and call them unconditionally.
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names. Layers register these against the process
// metrics; the snapshot prints them sorted, so related names share a
// dotted prefix.
const (
	MUISubmits          = "ui.submits"
	MSynthesisSubmits   = "synthesis.submits"
	MSynthesisEvents    = "synthesis.events"
	MScriptsExecuted    = "controller.scripts"
	MControllerCommands = "controller.commands"
	MControllerEvents   = "controller.events"
	MPolicyDenials      = "controller.policy.denials"
	MBrokerCalls        = "broker.calls"
	MBrokerSteps        = "broker.steps"
	MBrokerEvents       = "broker.events"
	MEUSteps            = "eu.steps"
	MEventsPosted       = "pump.events.posted"
	MEventsDropped      = "pump.events.dropped"
	MEventsDelivered    = "pump.events.delivered"
	MQueueDepth         = "pump.queue.depth"
	MMonitorTicks       = "monitor.ticks"
	HPumpDeliver        = "pump.deliver.latency"

	// Fault-injection and resilience metrics (package fault and the
	// degraded-mode paths consuming it).
	MFaultInjected    = "fault.injected"
	MRetryAttempts    = "retry.attempts"
	MRetryExhausted   = "retry.exhausted"
	MBreakerOpen      = "breaker.open"
	MBreakerShorted   = "breaker.shorted"
	MProbeFailures    = "monitor.probe.failures"
	MEvalFailures     = "monitor.eval.failures"
	MDeliverFailures  = "pump.deliver.failures"
	MRemoteRedials    = "remote.redials"
	MRemoteTimeouts   = "remote.timeouts"
	MRemoteBadFrames  = "remote.frames.bad"
	MRemoteSlowEvents = "remote.events.slowdrop"
	MRemoteVersionBad = "remote.version.mismatch"

	// Supervision and recovery metrics (the self-healing layer: panic
	// isolation, the dead-letter queue and the watchdog supervisor).
	MEventsRejected     = "pump.events.rejected"
	MEventsDeadLettered = "pump.events.deadlettered"
	MDLQDepth           = "dlq.depth"
	MDLQRedelivered     = "dlq.redelivered"
	MDLQRequeued        = "dlq.requeued"
	MPanicsRecovered    = "panic.recovered"

	MBrokerReentrantDropped     = "broker.events.reentrant.dropped"
	MControllerReentrantDropped = "controller.events.reentrant.dropped"

	MSupervisorDegraded    = "supervisor.degraded"
	MSupervisorQuarantined = "supervisor.quarantined"
	MSupervisorRestarts    = "supervisor.restarts"

	// Conformance-validation metrics (the metamodel compile fast path and
	// the content-hash validation cache).
	MValidateFast         = "validate.fast"
	MValidateInterpreted  = "validate.interpreted"
	MValidateFallback     = "validate.fallback"
	MValidateDelta        = "validate.delta"
	MValidateCacheHits    = "validate.cache.hits"
	MValidateCacheMisses  = "validate.cache.misses"
	MValidateCacheEvicted = "validate.cache.evictions"
	MMetamodelCompiles    = "metamodel.compiles"
	MMetamodelCompileErr  = "metamodel.compile.failures"
	HMetamodelCompile     = "metamodel.compile.latency"

	// Multi-tenant platform-server metrics (internal/serve).
	MServeTenantsResident = "serve.tenants.resident"
	MServeTenantsParked   = "serve.tenants.parked"
	MServeCreated         = "serve.tenants.created"
	MServeEvictions       = "serve.evictions"
	MServeRehydrations    = "serve.rehydrations"
	MServeThrottled       = "serve.events.throttled"

	// Cluster metrics (internal/cluster: membership, cross-node event
	// forwarding and live tenant migration).
	MClusterPeersLive        = "cluster.peers.live"
	MClusterHeartbeatsSent   = "cluster.heartbeats.sent"
	MClusterHeartbeatsRecv   = "cluster.heartbeats.received"
	MClusterSuspicions       = "cluster.suspicions"
	MClusterDeaths           = "cluster.deaths"
	MClusterForwardsSent     = "cluster.forwards.sent"
	MClusterForwardsRecv     = "cluster.forwards.received"
	MClusterForwardsDeduped  = "cluster.forwards.deduped"
	MClusterForwardsResent   = "cluster.forwards.resent"
	MClusterForwardsQueued   = "cluster.forwards.queued"
	MClusterForwardsParked   = "cluster.forwards.deadlettered"
	MClusterForwardsRejected = "cluster.forwards.rejected"
	MClusterMigrationsOut    = "cluster.migrations.out"
	MClusterMigrationsIn     = "cluster.migrations.in"
	MClusterAdoptions        = "cluster.adoptions"
	MClusterReplicasHeld     = "cluster.replicas.held"

	// Auto-provisioned HTTP API metrics (internal/api).
	MAPIRequests       = "api.requests"
	MAPIProblems       = "api.problems"
	MAPIWrites         = "api.writes"
	MAPIWritesRejected = "api.writes.rejected"
	MAPIEventsAccepted = "api.events.accepted"
	MAPIRedirects      = "api.redirects"
	MAPIWatchers       = "api.watchers"
	MAPIWatchDelivered = "api.watch.delivered"
	MAPIWatchLagged    = "api.watch.lagged"
	HAPIRequest        = "api.request.latency"
)

// SupervisorState derives the per-component health gauge name for the
// watchdog supervisor (e.g. "supervisor.state.pump"): 0 healthy, 1
// degraded, 2 quarantined.
func SupervisorState(component string) string {
	return "supervisor.state." + component
}

// ShardMetric derives the per-shard instrument name for one shard of the
// sharded event pump (e.g. "pump.queue.depth.shard.3"). The aggregate
// names above keep their meaning; a sharded pump additionally registers
// one instrument per shard under these derived names, and the snapshot's
// sorted output groups them behind their aggregate.
func ShardMetric(base string, shard int) string {
	return fmt.Sprintf("%s.shard.%d", base, shard)
}

// Canonical span names, one per cross-layer hop.
const (
	SpanUISubmit        = "ui.submit"
	SpanSynthSubmit     = "synthesis.submit"
	SpanSynthEvent      = "synthesis.event"
	SpanCtlScript       = "controller.script"
	SpanCtlCommand      = "controller.command"
	SpanCtlEvent        = "controller.event"
	SpanBrokerCall      = "broker.call"
	SpanBrokerStep      = "broker.step"
	SpanBrokerEvent     = "broker.event"
	SpanResourceExecute = "resource.execute"
	SpanEURun           = "eu.run"
	SpanPumpDeliver     = "pump.deliver"
	SpanMonitorTick     = "monitor.tick"
)

// ---------------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing atomic counter. A nil Counter is a
// valid no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge tracks a level (e.g. queue depth) and remembers the high-water
// mark. A nil Gauge is a valid no-op.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current level and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBounds are the fixed histogram bucket upper bounds. The last bucket
// is unbounded.
var histBounds = [...]time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// HistBuckets is the number of histogram buckets (len(bounds)+1 for the
// overflow bucket).
const HistBuckets = len(histBounds) + 1

// Histogram is a fixed-bucket latency histogram. A nil Histogram is a
// valid no-op.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64 // nanoseconds
	n       atomic.Int64
}

// bucketIdx returns the bucket index for d.
func bucketIdx(d time.Duration) int {
	for i, b := range histBounds {
		if d <= b {
			return i
		}
	}
	return HistBuckets - 1
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketIdx(d)].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Mean returns the mean sample duration (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Sum returns the total of all observed samples (0 for a nil histogram).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// HistBoundSeconds returns bucket i's upper bound in seconds and true, or
// (0, false) for the unbounded overflow bucket. Exporters (Prometheus text
// format) use it to render `le` labels.
func HistBoundSeconds(i int) (float64, bool) {
	if i < 0 || i >= len(histBounds) {
		return 0, false
	}
	return histBounds[i].Seconds(), true
}

// bucketLabel names bucket i for snapshots.
func bucketLabel(i int) string {
	if i < len(histBounds) {
		return "<=" + histBounds[i].String()
	}
	return ">" + histBounds[len(histBounds)-1].String()
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

// Metrics is a process-wide named registry of counters, gauges and
// histograms. A nil *Metrics is a valid disabled registry: its lookup
// methods return nil instruments whose operations are no-ops.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an enabled, empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter; nil when
// the registry is disabled.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge; nil when the
// registry is disabled.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram; nil
// when the registry is disabled.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Each visits every registered instrument in name-sorted order: counters
// first, then gauges, then histograms. Any of the callbacks may be nil.
// The instruments handed out are live — exporters read them without
// copying — but the registry lock is not held during the visits, so
// callbacks may register further instruments.
func (m *Metrics) Each(cf func(name string, c *Counter), gf func(name string, g *Gauge), hf func(name string, h *Histogram)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	counters := make(map[string]*Counter, len(m.counters))
	for name, c := range m.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for name, g := range m.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for name, h := range m.hists {
		hists[name] = h
	}
	m.mu.Unlock()
	if cf != nil {
		for _, name := range sortedKeys(counters) {
			cf(name, counters[name])
		}
	}
	if gf != nil {
		for _, name := range sortedKeys(gauges) {
			gf(name, gauges[name])
		}
	}
	if hf != nil {
		for _, name := range sortedKeys(hists) {
			hf(name, hists[name])
		}
	}
}

// CounterValue returns the named counter's value (0 when absent/disabled).
func (m *Metrics) CounterValue(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	c := m.counters[name]
	m.mu.Unlock()
	return c.Value()
}

// Snapshot formats every registered instrument, sorted by name.
func (m *Metrics) Snapshot() string {
	if m == nil {
		return "metrics: disabled\n"
	}
	m.mu.Lock()
	counters := make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for name, g := range m.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for name, h := range m.hists {
		hists[name] = h
	}
	m.mu.Unlock()

	var b strings.Builder
	b.WriteString("# counters\n")
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(&b, "%-34s %d\n", name, counters[name])
	}
	if len(gauges) > 0 {
		b.WriteString("# gauges (current / max)\n")
		for _, name := range sortedKeys(gauges) {
			g := gauges[name]
			fmt.Fprintf(&b, "%-34s %d / %d\n", name, g.Value(), g.Max())
		}
	}
	if len(hists) > 0 {
		b.WriteString("# histograms\n")
		for _, name := range sortedKeys(hists) {
			writeHist(&b, name, hists[name])
		}
	}
	return b.String()
}

func writeHist(b *strings.Builder, name string, h *Histogram) {
	fmt.Fprintf(b, "%-34s n=%d mean=%s", name, h.Count(), h.Mean())
	for i := 0; i < HistBuckets; i++ {
		if n := h.Bucket(i); n > 0 {
			fmt.Fprintf(b, " %s:%d", bucketLabel(i), n)
		}
	}
	b.WriteByte('\n')
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Tracer and spans
// ---------------------------------------------------------------------------

// SpanID identifies one span; 0 is "no span".
type SpanID uint64

// SpanRecord is one finished span kept in the tracer's bounded ring.
type SpanRecord struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  map[string]any
}

// spanStats aggregates finished spans by name.
type spanStats struct {
	count atomic.Int64
	hist  Histogram
}

// Tracer records spans with parent linkage. Parentage is implicit: a span
// started on a goroutine while another span of the same goroutine is open
// becomes that span's child, which matches the engine's synchronous
// cross-layer call chains without threading context through every layer
// API. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	nextID atomic.Uint64

	mu     sync.Mutex
	active map[uint64][]SpanID // goroutine id → open span stack
	byName map[string]*spanStats
	ring   []SpanRecord
	cursor int
	filled bool
}

// defaultRingCap bounds the finished-span ring.
const defaultRingCap = 4096

// NewTracer returns an enabled tracer keeping the most recent finished
// spans in a bounded ring.
func NewTracer() *Tracer {
	return &Tracer{
		active: make(map[uint64][]SpanID),
		byName: make(map[string]*spanStats),
		ring:   make([]SpanRecord, defaultRingCap),
	}
}

// Enabled reports whether the tracer records spans.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is one traced operation. The zero Span (returned by a disabled
// tracer) is a valid no-op; End and SetAttr return immediately.
type Span struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	gid    uint64
	name   string
	start  time.Time
	attrs  map[string]any
}

// Start opens a span named name, linked to the innermost span currently
// open on this goroutine.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	g := goid()
	id := SpanID(t.nextID.Add(1))
	t.mu.Lock()
	stack := t.active[g]
	var parent SpanID
	if n := len(stack); n > 0 {
		parent = stack[n-1]
	}
	t.active[g] = append(stack, id)
	t.mu.Unlock()
	return Span{t: t, id: id, parent: parent, gid: g, name: name, start: time.Now()}
}

// ID returns the span's identifier (0 for a no-op span).
func (s Span) ID() SpanID { return s.id }

// Parent returns the parent span's identifier (0 for roots).
func (s Span) Parent() SpanID { return s.parent }

// SetAttr attaches an attribute to the span. No-op on disabled spans, so
// callers need not gate attribute formatting on Enabled.
func (s *Span) SetAttr(key string, v any) {
	if s.t == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// SetStr attaches a string attribute. Unlike SetAttr its signature takes
// no interface value, so a disabled span costs only the nil check — the
// caller never boxes the string. Prefer it on hot paths.
func (s *Span) SetStr(key, v string) {
	if s.t == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// End closes the span, pops it from its goroutine's stack and folds it
// into the per-name statistics and the recent-span ring.
func (s Span) End() {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	stack := t.active[s.gid]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == s.id {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(t.active, s.gid)
	} else {
		t.active[s.gid] = stack
	}
	st, ok := t.byName[s.name]
	if !ok {
		st = &spanStats{}
		t.byName[s.name] = st
	}
	t.ring[t.cursor] = SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Dur: dur, Attrs: s.attrs,
	}
	t.cursor++
	if t.cursor == len(t.ring) {
		t.cursor = 0
		t.filled = true
	}
	t.mu.Unlock()
	st.count.Add(1)
	st.hist.Observe(dur)
}

// Count returns the number of finished spans named name.
func (t *Tracer) Count(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	st := t.byName[name]
	t.mu.Unlock()
	if st == nil {
		return 0
	}
	return st.count.Load()
}

// Counts returns finished-span counts by name.
func (t *Tracer) Counts() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.byName))
	for name, st := range t.byName {
		out[name] = st.count.Load()
	}
	return out
}

// Recent returns the most recent finished spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.filled {
		out = append(out, t.ring[t.cursor:]...)
	}
	out = append(out, t.ring[:t.cursor]...)
	return out
}

// Snapshot formats per-name span counts and latency statistics, sorted by
// span name.
func (t *Tracer) Snapshot() string {
	if t == nil {
		return "tracer: disabled\n"
	}
	t.mu.Lock()
	stats := make(map[string]*spanStats, len(t.byName))
	for name, st := range t.byName {
		stats[name] = st
	}
	t.mu.Unlock()
	var b strings.Builder
	b.WriteString("# spans\n")
	for _, name := range sortedKeys(stats) {
		writeHist(&b, name, &stats[name].hist)
	}
	return b.String()
}

// GoID returns the calling goroutine's id. Layers use it to keep
// per-goroutine re-entrancy state (event drains that must not recurse on
// the goroutine already processing an event, while letting other
// goroutines proceed concurrently).
func GoID() uint64 { return goid() }

// goidBufPool recycles the header buffers goid hands to runtime.Stack.
// runtime.Stack's argument always escapes, so a local array would be a
// fresh heap allocation per call — and goid runs at least twice per
// delivered event (re-entrancy queueing and route-error pickup).
var goidBufPool = sync.Pool{New: func() any {
	b := make([]byte, 64)
	return &b
}}

// goid parses the running goroutine's id from its stack header
// ("goroutine N [running]:"). It costs roughly a microsecond and does not
// allocate in steady state.
func goid() uint64 {
	bp := goidBufPool.Get().(*[]byte)
	buf := *bp
	n := runtime.Stack(buf, false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	goidBufPool.Put(bp)
	return id
}

// ---------------------------------------------------------------------------
// Bundle
// ---------------------------------------------------------------------------

// Obs bundles a tracer and a metrics registry. A nil *Obs (or a bundle of
// nils) is a valid disabled observer.
type Obs struct {
	Tracer  *Tracer
	Metrics *Metrics
}

// New returns an enabled tracer+metrics bundle.
func New() *Obs {
	return &Obs{Tracer: NewTracer(), Metrics: NewMetrics()}
}

// TracerOf returns o's tracer, nil for a nil bundle.
func (o *Obs) TracerOf() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// MetricsOf returns o's metrics, nil for a nil bundle.
func (o *Obs) MetricsOf() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Snapshot formats the full observability state: metrics first, then span
// statistics.
func (o *Obs) Snapshot() string {
	if o == nil {
		return "observability: disabled\n"
	}
	return o.Metrics.Snapshot() + o.Tracer.Snapshot()
}
