package expr

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Scope resolves identifiers during evaluation.
type Scope interface {
	// Lookup returns the value bound to name and whether it exists.
	Lookup(name string) (any, bool)
}

// MapScope is a Scope backed by a map. Dotted names are looked up verbatim
// first; when absent, the first segment is resolved and the remainder is
// looked up on a nested MapScope/map value.
type MapScope map[string]any

var _ Scope = MapScope(nil)

// Lookup implements Scope.
func (s MapScope) Lookup(name string) (any, bool) {
	if v, ok := s[name]; ok {
		return v, true
	}
	head, rest, found := strings.Cut(name, ".")
	if !found {
		return nil, false
	}
	switch sub := s[head].(type) {
	case MapScope:
		return sub.Lookup(rest)
	case map[string]any:
		return MapScope(sub).Lookup(rest)
	default:
		return nil, false
	}
}

// Func is a host function callable from expressions.
type Func func(args []any) (any, error)

// Env bundles a Scope with a function table.
type Env struct {
	Scope Scope
	Funcs map[string]Func
}

// EvalError reports an evaluation failure.
type EvalError struct {
	Node Node
	Msg  string
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("eval %s: %s", e.Node, e.Msg)
}

// ErrUnboundIdentifier is wrapped by evaluation errors caused by unresolved
// names, so policy engines can distinguish "unknown variable" from type
// errors.
var ErrUnboundIdentifier = errors.New("unbound identifier")

// Eval evaluates the node in env. Results are float64, string or bool.
func Eval(n Node, env Env) (any, error) {
	switch node := n.(type) {
	case *Lit:
		return node.Value, nil
	case *Ident:
		if env.Scope != nil {
			if v, ok := env.Scope.Lookup(node.Name); ok {
				return normalize(v), nil
			}
		}
		return nil, fmt.Errorf("eval %s: %w", node.Name, ErrUnboundIdentifier)
	case *Unary:
		x, err := Eval(node.X, env)
		if err != nil {
			return nil, err
		}
		switch node.Op {
		case "!":
			b, ok := x.(bool)
			if !ok {
				return nil, &EvalError{Node: n, Msg: fmt.Sprintf("! wants bool, got %T", x)}
			}
			return !b, nil
		case "-":
			f, ok := x.(float64)
			if !ok {
				return nil, &EvalError{Node: n, Msg: fmt.Sprintf("- wants number, got %T", x)}
			}
			return -f, nil
		default:
			return nil, &EvalError{Node: n, Msg: "unknown unary operator"}
		}
	case *Binary:
		return evalBinary(node, env)
	case *Call:
		fn, ok := env.Funcs[node.Fn]
		if !ok {
			return nil, &EvalError{Node: n, Msg: fmt.Sprintf("unknown function %q", node.Fn)}
		}
		args := make([]any, len(node.Args))
		for i, a := range node.Args {
			v, err := Eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		out, err := fn(args)
		if err != nil {
			return nil, &EvalError{Node: n, Msg: err.Error()}
		}
		return normalize(out), nil
	default:
		return nil, &EvalError{Node: n, Msg: "unknown node type"}
	}
}

func evalBinary(node *Binary, env Env) (any, error) {
	// Short-circuit boolean connectives.
	switch node.Op {
	case "&&", "||":
		l, err := Eval(node.L, env)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			return nil, &EvalError{Node: node, Msg: fmt.Sprintf("%s wants bool operands, got %T", node.Op, l)}
		}
		if node.Op == "&&" && !lb {
			return false, nil
		}
		if node.Op == "||" && lb {
			return true, nil
		}
		r, err := Eval(node.R, env)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, &EvalError{Node: node, Msg: fmt.Sprintf("%s wants bool operands, got %T", node.Op, r)}
		}
		return rb, nil
	}

	l, err := Eval(node.L, env)
	if err != nil {
		return nil, err
	}
	r, err := Eval(node.R, env)
	if err != nil {
		return nil, err
	}

	switch node.Op {
	case "==":
		return looseEqual(l, r), nil
	case "!=":
		return !looseEqual(l, r), nil
	}

	// String concatenation and comparison.
	if ls, ok := l.(string); ok {
		rs, ok := r.(string)
		if !ok {
			return nil, &EvalError{Node: node, Msg: fmt.Sprintf("mixed operand types %T and %T", l, r)}
		}
		switch node.Op {
		case "+":
			return ls + rs, nil
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		default:
			return nil, &EvalError{Node: node, Msg: fmt.Sprintf("operator %s not defined on strings", node.Op)}
		}
	}

	lf, lok := l.(float64)
	rf, rok := r.(float64)
	if !lok || !rok {
		return nil, &EvalError{Node: node, Msg: fmt.Sprintf("operator %s wants numbers, got %T and %T", node.Op, l, r)}
	}
	switch node.Op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, &EvalError{Node: node, Msg: "division by zero"}
		}
		return lf / rf, nil
	case "%":
		if rf == 0 {
			return nil, &EvalError{Node: node, Msg: "modulo by zero"}
		}
		return math.Mod(lf, rf), nil
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	default:
		return nil, &EvalError{Node: node, Msg: fmt.Sprintf("unknown operator %s", node.Op)}
	}
}

// looseEqual compares values after numeric normalisation.
func looseEqual(l, r any) bool { return normalize(l) == normalize(r) }

// normalize widens numeric types to float64 so scope values set as int work
// naturally in expressions.
func normalize(v any) any {
	switch n := v.(type) {
	case int:
		return float64(n)
	case int32:
		return float64(n)
	case int64:
		return float64(n)
	case float32:
		return float64(n)
	case uint:
		return float64(n)
	default:
		return v
	}
}

// EvalBool evaluates n and asserts a boolean result.
func EvalBool(n Node, env Env) (bool, error) {
	v, err := Eval(n, env)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, &EvalError{Node: n, Msg: fmt.Sprintf("want bool result, got %T", v)}
	}
	return b, nil
}

// EvalNumber evaluates n and asserts a numeric result.
func EvalNumber(n Node, env Env) (float64, error) {
	v, err := Eval(n, env)
	if err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, &EvalError{Node: n, Msg: fmt.Sprintf("want number result, got %T", v)}
	}
	return f, nil
}

// StdFuncs returns the standard function table available to all MD-DSM
// expressions: min, max, abs, len, contains, floor, ceil.
func StdFuncs() map[string]Func {
	return map[string]Func{
		"min": func(args []any) (any, error) {
			return foldNums("min", args, math.Min)
		},
		"max": func(args []any) (any, error) {
			return foldNums("max", args, math.Max)
		},
		"abs": func(args []any) (any, error) {
			if len(args) != 1 {
				return nil, errors.New("abs wants 1 argument")
			}
			f, ok := normalize(args[0]).(float64)
			if !ok {
				return nil, fmt.Errorf("abs wants a number, got %T", args[0])
			}
			return math.Abs(f), nil
		},
		"len": func(args []any) (any, error) {
			if len(args) != 1 {
				return nil, errors.New("len wants 1 argument")
			}
			s, ok := args[0].(string)
			if !ok {
				return nil, fmt.Errorf("len wants a string, got %T", args[0])
			}
			return float64(len(s)), nil
		},
		"contains": func(args []any) (any, error) {
			if len(args) != 2 {
				return nil, errors.New("contains wants 2 arguments")
			}
			s, ok1 := args[0].(string)
			sub, ok2 := args[1].(string)
			if !ok1 || !ok2 {
				return nil, errors.New("contains wants string arguments")
			}
			return strings.Contains(s, sub), nil
		},
		"floor": func(args []any) (any, error) {
			if len(args) != 1 {
				return nil, errors.New("floor wants 1 argument")
			}
			f, ok := normalize(args[0]).(float64)
			if !ok {
				return nil, fmt.Errorf("floor wants a number, got %T", args[0])
			}
			return math.Floor(f), nil
		},
		"ceil": func(args []any) (any, error) {
			if len(args) != 1 {
				return nil, errors.New("ceil wants 1 argument")
			}
			f, ok := normalize(args[0]).(float64)
			if !ok {
				return nil, fmt.Errorf("ceil wants a number, got %T", args[0])
			}
			return math.Ceil(f), nil
		},
	}
}

func foldNums(name string, args []any, f func(a, b float64) float64) (any, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("%s wants at least 1 argument", name)
	}
	acc, ok := normalize(args[0]).(float64)
	if !ok {
		return nil, fmt.Errorf("%s wants numbers, got %T", name, args[0])
	}
	for _, a := range args[1:] {
		v, ok := normalize(a).(float64)
		if !ok {
			return nil, fmt.Errorf("%s wants numbers, got %T", name, a)
		}
		acc = f(acc, v)
	}
	return acc, nil
}
