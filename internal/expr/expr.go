// Package expr implements the small expression language used throughout the
// MD-DSM platform: policy conditions, LTS transition guards, and execution
// unit predicates are all written in it.
//
// The language has numbers (float64), strings, booleans, dotted identifiers
// resolved against a Scope, arithmetic (+ - * / %), comparisons
// (== != < <= > >=), boolean connectives (&& || !), unary minus, parentheses
// and function calls. Evaluation is side-effect free.
package expr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Node is an AST node.
type Node interface {
	// String renders the node back to (canonical) source.
	String() string
}

// Lit is a literal value: float64, string or bool.
type Lit struct {
	Value any
}

// String implements Node.
func (l *Lit) String() string {
	switch v := l.Value.(type) {
	case string:
		return strconv.Quote(v)
	case float64:
		return strconv.FormatFloat(v, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Ident is a dotted identifier such as ctx.bandwidth.
type Ident struct {
	Name string
}

// String implements Node.
func (i *Ident) String() string { return i.Name }

// Unary is a prefix operation: ! or -.
type Unary struct {
	Op string
	X  Node
}

// String implements Node.
func (u *Unary) String() string { return u.Op + u.X.String() }

// Binary is an infix operation.
type Binary struct {
	Op   string
	L, R Node
}

// String implements Node.
func (b *Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Call is a function application.
type Call struct {
	Fn   string
	Args []Node
}

// String implements Node.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

// ParseError reports a syntax error with its position.
type ParseError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("parse error at %d: %s", e.Pos, e.Msg) }

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokNum
	tokStr
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	pos  int
	text string
	num  float64
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		default:
			if ok := l.lexOp(); !ok {
				return nil, &ParseError{Pos: l.pos, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, pos: l.pos, text: text})
	l.pos += len(text)
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	text := l.src[start:l.pos]
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return &ParseError{Pos: start, Msg: fmt.Sprintf("bad number %q", text)}
	}
	l.toks = append(l.toks, token{kind: tokNum, pos: start, text: text, num: n})
	return nil
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokStr, pos: start, text: sb.String()})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return &ParseError{Pos: start, Msg: "unterminated string"}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, pos: start, text: l.src[start:l.pos]})
}

var twoCharOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

func (l *lexer) lexOp() bool {
	rest := l.src[l.pos:]
	for _, op := range twoCharOps {
		if strings.HasPrefix(rest, op) {
			l.emit(tokOp, op)
			return true
		}
	}
	switch rest[0] {
	case '+', '-', '*', '/', '%', '<', '>', '!':
		l.emit(tokOp, rest[:1])
		return true
	}
	return false
}

// binding powers for the Pratt parser; higher binds tighter.
var infixPower = map[string]int{
	"||": 10,
	"&&": 20,
	"==": 30, "!=": 30,
	"<": 40, "<=": 40, ">": 40, ">=": 40,
	"+": 50, "-": 50,
	"*": 60, "/": 60, "%": 60,
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses src into an AST.
func Parse(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	node, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf("unexpected %q after expression", p.peek().text)}
	}
	return node, nil
}

// MustParse is Parse that panics on error, for static expressions in code.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) parseExpr(minPower int) (Node, error) {
	left, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return left, nil
		}
		power, ok := infixPower[t.text]
		if !ok || power < minPower {
			return left, nil
		}
		p.next()
		right, err := p.parseExpr(power + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, L: left, R: right}
	}
}

func (p *parser) parsePrefix() (Node, error) {
	t := p.next()
	switch t.kind {
	case tokNum:
		return &Lit{Value: t.num}, nil
	case tokStr:
		return &Lit{Value: t.text}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return &Lit{Value: true}, nil
		case "false":
			return &Lit{Value: false}, nil
		}
		if p.peek().kind == tokLParen {
			return p.parseCall(t.text)
		}
		return &Ident{Name: t.text}, nil
	case tokLParen:
		inner, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if tt := p.next(); tt.kind != tokRParen {
			return nil, &ParseError{Pos: tt.pos, Msg: "expected )"}
		}
		return inner, nil
	case tokOp:
		switch t.text {
		case "!", "-":
			x, err := p.parsePrefix()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: t.text, X: x}, nil
		}
		return nil, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("unexpected operator %q", t.text)}
	case tokEOF:
		return nil, &ParseError{Pos: t.pos, Msg: "unexpected end of expression"}
	default:
		return nil, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("unexpected %q", t.text)}
	}
}

func (p *parser) parseCall(fn string) (Node, error) {
	p.next() // consume (
	call := &Call{Fn: fn}
	if p.peek().kind == tokRParen {
		p.next()
		return call, nil
	}
	for {
		arg, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		t := p.next()
		switch t.kind {
		case tokComma:
			continue
		case tokRParen:
			return call, nil
		default:
			return nil, &ParseError{Pos: t.pos, Msg: "expected , or ) in call"}
		}
	}
}
