package expr

import (
	"fmt"
	"strings"
)

// Interpolate fills {name} holes in a template from the scope. When the
// whole template is a single placeholder the native value is returned
// (preserving numbers and booleans); otherwise values are interpolated
// textually. Unbound placeholders are errors.
func Interpolate(tpl string, scope Scope) (any, error) {
	if !strings.Contains(tpl, "{") {
		return tpl, nil
	}
	if strings.HasPrefix(tpl, "{") && strings.HasSuffix(tpl, "}") && strings.Count(tpl, "{") == 1 {
		name := tpl[1 : len(tpl)-1]
		v, ok := scope.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("placeholder %q unbound", name)
		}
		return v, nil
	}
	var sb strings.Builder
	for {
		open := strings.IndexByte(tpl, '{')
		if open < 0 {
			sb.WriteString(tpl)
			return sb.String(), nil
		}
		closeIdx := strings.IndexByte(tpl[open:], '}')
		if closeIdx < 0 {
			return nil, fmt.Errorf("unterminated placeholder in %q", tpl)
		}
		closeIdx += open
		sb.WriteString(tpl[:open])
		name := tpl[open+1 : closeIdx]
		v, ok := scope.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("placeholder %q unbound", name)
		}
		fmt.Fprintf(&sb, "%v", v)
		tpl = tpl[closeIdx+1:]
	}
}

// InterpolateString is Interpolate forcing a textual result. A template
// with no holes short-circuits before Interpolate so the string never
// round-trips through an interface (which would box, i.e. allocate, on
// every expansion of a literal op or target).
func InterpolateString(tpl string, scope Scope) (string, error) {
	if !strings.Contains(tpl, "{") {
		return tpl, nil
	}
	v, err := Interpolate(tpl, scope)
	if err != nil {
		return "", err
	}
	if s, ok := v.(string); ok {
		return s, nil
	}
	return fmt.Sprintf("%v", v), nil
}
