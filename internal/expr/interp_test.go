package expr

import (
	"strings"
	"testing"
)

func TestInterpolate(t *testing.T) {
	scope := MapScope{"id": "s1", "n": 42.0, "flag": true, "nest": MapScope{"v": "deep"}}
	tests := []struct {
		tpl  string
		want any
	}{
		{"plain", "plain"},
		{"{id}", "s1"},
		{"{n}", 42.0},
		{"{flag}", true},
		{"a-{id}-b", "a-s1-b"},
		{"{id}/{n}", "s1/42"},
		{"{nest.v}", "deep"},
	}
	for _, tt := range tests {
		got, err := Interpolate(tt.tpl, scope)
		if err != nil || got != tt.want {
			t.Errorf("Interpolate(%q) = %v, %v; want %v", tt.tpl, got, err, tt.want)
		}
	}
	for _, bad := range []string{"{ghost}", "x{ghost}y", "{open"} {
		if _, err := Interpolate(bad, scope); err == nil {
			t.Errorf("Interpolate(%q) should fail", bad)
		}
	}
}

func TestInterpolateString(t *testing.T) {
	scope := MapScope{"n": 7.0, "s": "txt"}
	if got, err := InterpolateString("{n}", scope); err != nil || got != "7" {
		t.Errorf("got %q, %v", got, err)
	}
	if got, err := InterpolateString("{s}", scope); err != nil || got != "txt" {
		t.Errorf("got %q, %v", got, err)
	}
	if _, err := InterpolateString("{ghost}", scope); err == nil {
		t.Error("unbound must fail")
	}
}

func TestNodeStringForms(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`"str"`, `"str"`},
		{"2.5", "2.5"},
		{"true", "true"},
		{"false", "false"},
		{"a && !b", "(a && !b)"},
		{"min(1, x)", "min(1, x)"},
		{"-x", "-x"},
	}
	for _, tt := range tests {
		if got := MustParse(tt.src).String(); got != tt.want {
			t.Errorf("String(%q) = %q want %q", tt.src, got, tt.want)
		}
	}
	// The catch-all literal branch.
	l := &Lit{Value: []int{1}}
	if !strings.Contains(l.String(), "[1]") {
		t.Errorf("odd literal: %q", l.String())
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse("1 +")
	if err == nil || !strings.Contains(err.Error(), "parse error at") {
		t.Errorf("got %v", err)
	}
}

func TestEvalErrorMessage(t *testing.T) {
	_, err := Eval(MustParse("!5"), Env{})
	if err == nil || !strings.Contains(err.Error(), "eval") {
		t.Errorf("got %v", err)
	}
}
