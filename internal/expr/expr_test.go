package expr

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func evalStr(t *testing.T, src string, scope MapScope) any {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(n, Env{Scope: scope, Funcs: StdFuncs()})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalBasics(t *testing.T) {
	scope := MapScope{
		"x": 10, "y": 4.0, "name": "cvm", "on": true,
		"ctx": MapScope{"bandwidth": 100, "mode": "audio"},
		"raw": map[string]any{"deep": map[string]any{"v": 7}},
	}
	tests := []struct {
		src  string
		want any
	}{
		{"1 + 2 * 3", 7.0},
		{"(1 + 2) * 3", 9.0},
		{"10 / 4", 2.5},
		{"10 % 4", 2.0},
		{"-x + 1", -9.0},
		{"2 < 3", true},
		{"2 >= 3", false},
		{"x == 10", true},
		{"x != y", true},
		{"x > y && on", true},
		{"false || on", true},
		{"!on", false},
		{"!(x < y)", true},
		{"name == 'cvm'", true},
		{`name + "-vm"`, "cvm-vm"},
		{`"abc" < "abd"`, true},
		{"ctx.bandwidth >= 50", true},
		{"ctx.mode == 'audio'", true},
		{"raw.deep.v", 7.0},
		{"min(3, 1, 2)", 1.0},
		{"max(3, 1, 2)", 3.0},
		{"abs(0 - 5)", 5.0},
		{"len('abcd')", 4.0},
		{"contains('hello', 'ell')", true},
		{"floor(2.7)", 2.0},
		{"ceil(2.1)", 3.0},
		{"true", true},
		{"false", false},
		{"'quoted \\' inner'", "quoted ' inner"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src, scope); got != tt.want {
			t.Errorf("%q = %v (%T), want %v", tt.src, got, got, tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side references an unbound variable; short-circuiting must
	// avoid evaluating it.
	scope := MapScope{"a": true, "b": false}
	if got := evalStr(t, "a || boom", scope); got != true {
		t.Error("|| must short circuit")
	}
	if got := evalStr(t, "b && boom", scope); got != false {
		t.Error("&& must short circuit")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1 2", "min(1,", "min(1 2)", "@", "'open",
		"&& 1", "1..2.3", "*1", "f(,)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		} else {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Errorf("Parse(%q): want *ParseError, got %T", src, err)
			}
		}
	}
}

func TestEvalErrors(t *testing.T) {
	scope := MapScope{"s": "str", "n": 1}
	bad := []string{
		"unbound",
		"!n",
		"-s",
		"s && true",
		"true && n",
		"1 < s",
		"s - 'a'",
		"1 / 0",
		"1 % 0",
		"nosuchfn(1)",
		"abs('x')",
		"abs(1, 2)",
		"len(1)",
		"contains(1, 2)",
		"contains('a')",
		"min()",
		"min('a')",
		"min(1, 'a')",
		"floor('x')",
		"ceil('x')",
		"floor(1, 2)",
		"ceil()",
		"len('a', 'b')",
	}
	for _, src := range bad {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(n, Env{Scope: scope, Funcs: StdFuncs()}); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

func TestUnboundIdentifierIsMatchable(t *testing.T) {
	n := MustParse("ghost > 1")
	_, err := Eval(n, Env{Scope: MapScope{}})
	if !errors.Is(err, ErrUnboundIdentifier) {
		t.Fatalf("want ErrUnboundIdentifier, got %v", err)
	}
}

func TestEvalBoolAndNumber(t *testing.T) {
	env := Env{Scope: MapScope{"x": 3}}
	if b, err := EvalBool(MustParse("x > 2"), env); err != nil || !b {
		t.Errorf("EvalBool: %v %v", b, err)
	}
	if _, err := EvalBool(MustParse("x + 2"), env); err == nil {
		t.Error("EvalBool on number should fail")
	}
	if f, err := EvalNumber(MustParse("x + 2"), env); err != nil || f != 5 {
		t.Errorf("EvalNumber: %v %v", f, err)
	}
	if _, err := EvalNumber(MustParse("x > 2"), env); err == nil {
		t.Error("EvalNumber on bool should fail")
	}
	if _, err := EvalBool(MustParse("ghost"), env); err == nil {
		t.Error("EvalBool propagates errors")
	}
	if _, err := EvalNumber(MustParse("ghost"), env); err == nil {
		t.Error("EvalNumber propagates errors")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestScopeNormalization(t *testing.T) {
	scope := MapScope{"i32": int32(3), "i64": int64(4), "u": uint(5), "f32": float32(1.5)}
	if got := evalStr(t, "i32 + i64 + u", scope); got != 12.0 {
		t.Errorf("int widening: %v", got)
	}
	if got := evalStr(t, "f32 * 2", scope); got != 3.0 {
		t.Errorf("float32 widening: %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	tests := []string{
		"1 + 2 * 3",
		"min(x, 2)",
		"!a && b",
		`"s" + 'x'`,
		"-(a)",
	}
	for _, src := range tests {
		n := MustParse(src)
		// Rendered source must reparse to an equivalent tree (same render).
		n2 := MustParse(n.String())
		if n.String() != n2.String() {
			t.Errorf("%q: render not stable: %q vs %q", src, n.String(), n2.String())
		}
	}
}

// genExpr builds a random well-formed expression over numeric variables.
func genExpr(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return []string{"a", "b", "c"}[r.Intn(3)]
		case 1:
			return "1"
		default:
			return "2.5"
		}
	}
	ops := []string{"+", "-", "*"}
	return "(" + genExpr(r, depth-1) + " " + ops[r.Intn(len(ops))] + " " + genExpr(r, depth-1) + ")"
}

// Property: parsing the canonical rendering of a parsed expression yields
// the same value.
func TestParseRenderEvalProperty(t *testing.T) {
	env := Env{Scope: MapScope{"a": 2, "b": 3, "c": 5}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genExpr(r, 4)
		n1, err := Parse(src)
		if err != nil {
			return false
		}
		n2, err := Parse(n1.String())
		if err != nil {
			return false
		}
		v1, err1 := Eval(n1, env)
		v2, err2 := Eval(n2, env)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(v1.(float64)-v2.(float64)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: comparison operators are mutually consistent.
func TestComparisonConsistencyProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		env := Env{Scope: MapScope{"a": a, "b": b}}
		lt, _ := EvalBool(MustParse("a < b"), env)
		ge, _ := EvalBool(MustParse("a >= b"), env)
		eq, _ := EvalBool(MustParse("a == b"), env)
		le, _ := EvalBool(MustParse("a <= b"), env)
		return lt != ge && le == (lt || eq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepDotPathMisses(t *testing.T) {
	scope := MapScope{"a": MapScope{"b": 1}, "plain": 5}
	if _, ok := scope.Lookup("a.zzz"); ok {
		t.Error("missing nested key should miss")
	}
	if _, ok := scope.Lookup("plain.sub"); ok {
		t.Error("dotting into a scalar should miss")
	}
	if _, ok := scope.Lookup("ghost.x"); ok {
		t.Error("missing head should miss")
	}
	if v, ok := scope.Lookup("a.b"); !ok || v != 1 {
		t.Error("nested lookup should hit")
	}
}

func BenchmarkParse(b *testing.B) {
	src := "ctx.bandwidth >= 50 && (mode == 'audio' || mode == 'video') && !degraded"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	n := MustParse("ctx.bandwidth >= 50 && (mode == 'audio' || mode == 'video') && !degraded")
	env := Env{Scope: MapScope{
		"ctx":      MapScope{"bandwidth": 80},
		"mode":     "video",
		"degraded": false,
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(n, env); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStringsOrderOps(t *testing.T) {
	scope := MapScope{}
	if got := evalStr(t, `"a" <= "a"`, scope); got != true {
		t.Error("<= on strings")
	}
	if got := evalStr(t, `"b" > "a"`, scope); got != true {
		t.Error("> on strings")
	}
	if got := evalStr(t, `"b" >= "c"`, scope); got != false {
		t.Error(">= on strings")
	}
	n := MustParse(`"a" * "b"`)
	if _, err := Eval(n, Env{}); err == nil || !strings.Contains(err.Error(), "not defined on strings") {
		t.Errorf("* on strings must fail: %v", err)
	}
}
