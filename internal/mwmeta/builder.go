package mwmeta

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/mddsm/mddsm/internal/metamodel"
)

// Builder authors middleware models in code with a fluent API. It is the
// programmatic counterpart of a graphical middleware-model editor: every
// call creates objects of the middleware metamodel, and Validate checks
// conformance before the model is handed to the runtime factory.
type Builder struct {
	model    *metamodel.Model
	platform *metamodel.Object
	seq      int
}

// NewBuilder starts a middleware model for a platform.
func NewBuilder(platformName, domain string) *Builder {
	b := &Builder{model: metamodel.NewModel(Name)}
	b.platform = b.model.NewObject("platform", ClassPlatform).
		SetAttr("name", platformName).
		SetAttr("domain", domain)
	return b
}

// id mints a unique object ID with a readable prefix.
func (b *Builder) id(prefix string) string {
	b.seq++
	return prefix + "-" + strconv.Itoa(b.seq)
}

// Model returns the underlying middleware model.
func (b *Builder) Model() *metamodel.Model { return b.model }

// Validate checks the authored model against the middleware metamodel. The
// check goes through the process-wide validation cache, so the runtime
// factory's conformance check of the same authored content is a cache hit.
func (b *Builder) Validate() error {
	if _, err := metamodel.SharedValidationCache().Validate(MM(), b.model); err != nil {
		return fmt.Errorf("middleware model: %w", err)
	}
	return nil
}

// UILayer adds a UI layer.
func (b *Builder) UILayer(name string) *Builder {
	o := b.model.NewObject(b.id("ui"), ClassUILayer).SetAttr("name", name)
	b.platform.AddRef("layers", o.ID)
	return b
}

// SynthesisLayer adds a Synthesis layer bound to the named DSK LTS.
func (b *Builder) SynthesisLayer(name, ltsName string) *Builder {
	o := b.model.NewObject(b.id("synth"), ClassSynthesisLayer).
		SetAttr("name", name).
		SetAttr("ltsName", ltsName)
	b.platform.AddRef("layers", o.ID)
	return b
}

// ControllerLayer adds a Controller layer and returns its builder.
func (b *Builder) ControllerLayer(name string) *ControllerBuilder {
	o := b.model.NewObject(b.id("ctl"), ClassControllerLayer).SetAttr("name", name)
	b.platform.AddRef("layers", o.ID)
	return &ControllerBuilder{b: b, layer: o}
}

// BrokerLayer adds a Broker layer and returns its builder.
func (b *Builder) BrokerLayer(name string) *BrokerBuilder {
	o := b.model.NewObject(b.id("brk"), ClassBrokerLayer).SetAttr("name", name)
	b.platform.AddRef("layers", o.ID)
	return &BrokerBuilder{b: b, layer: o}
}

// addSteps appends ordered Step objects under owner's reference. Arg
// objects are minted in sorted key order so the same spec always builds
// the same model — snapshots of identical platforms must be comparable
// byte-wise, never hostage to map iteration order.
func (b *Builder) addSteps(owner *metamodel.Object, ref string, steps []StepSpec) {
	for i, s := range steps {
		st := b.model.NewObject(b.id("step"), ClassStep).
			SetAttr("op", s.Op).
			SetAttr("target", s.Target).
			SetAttr("order", i)
		for _, k := range sortedKeys(s.Args) {
			arg := b.model.NewObject(b.id("arg"), ClassArg).
				SetAttr("key", k).
				SetAttr("value", s.Args[k])
			st.AddRef("args", arg.ID)
		}
		owner.AddRef(ref, st.ID)
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// StepSpec declares one step template when authoring actions and plans.
type StepSpec struct {
	Op     string
	Target string
	Args   map[string]string
}

// PolicySpec declares one policy when authoring layers. Effects alternate
// key, value; values use the command-argument scalar syntax.
type PolicySpec struct {
	Name      string
	Priority  int
	Condition string
	Effects   map[string]string
}

// ControllerBuilder authors a Controller layer's configuration objects.
type ControllerBuilder struct {
	b     *Builder
	layer *metamodel.Object
}

// Done returns to the platform builder.
func (cb *ControllerBuilder) Done() *Builder { return cb.b }

// Options sets the layer's generation options.
func (cb *ControllerBuilder) Options(maxDepth int, cacheEnabled bool) *ControllerBuilder {
	cb.layer.SetAttr("maxDepth", maxDepth).SetAttr("cacheEnabled", cacheEnabled)
	return cb
}

// Action adds a predefined (Case 1) action. ops is comma-separated; guard
// may be empty.
func (cb *ControllerBuilder) Action(name, ops, guard string, steps ...StepSpec) *ControllerBuilder {
	o := cb.b.model.NewObject(cb.b.id("act"), ClassAction).
		SetAttr("name", name).
		SetAttr("ops", ops)
	if guard != "" {
		o.SetAttr("guard", guard)
	}
	cb.b.addSteps(o, "steps", steps)
	cb.layer.AddRef("actions", o.ID)
	return cb
}

// EventAction adds an event handler entry. scriptName selects an installed
// script from the DSK bundle and may be empty.
func (cb *ControllerBuilder) EventAction(name, event, guard string, forward bool, scriptName string, steps ...StepSpec) *ControllerBuilder {
	o := cb.b.model.NewObject(cb.b.id("evact"), ClassEventAction).
		SetAttr("name", name).
		SetAttr("event", event).
		SetAttr("forward", forward)
	if guard != "" {
		o.SetAttr("guard", guard)
	}
	if scriptName != "" {
		o.SetAttr("scriptName", scriptName)
	}
	cb.b.addSteps(o, "steps", steps)
	cb.layer.AddRef("eventActions", o.ID)
	return cb
}

// PassthroughAction is Action with forwardArgs set: the triggering
// command's arguments are copied onto every expanded step call.
func (cb *ControllerBuilder) PassthroughAction(name, ops, guard string, steps ...StepSpec) *ControllerBuilder {
	cb.Action(name, ops, guard, steps...)
	last := cb.layer.Refs("actions")
	cb.b.model.Get(last[len(last)-1]).SetAttr("forwardArgs", true)
	return cb
}

// Class maps a command operation to its goal DSC (Case 2 metadata).
func (cb *ControllerBuilder) Class(op, goalDSC string) *ControllerBuilder {
	o := cb.b.model.NewObject(cb.b.id("class"), ClassCommandClass).
		SetAttr("op", op).
		SetAttr("goalDsc", goalDSC)
	cb.layer.AddRef("classes", o.ID)
	return cb
}

// Policy adds a classification/selection policy to the layer.
func (cb *ControllerBuilder) Policy(p PolicySpec) *ControllerBuilder {
	cb.layer.AddRef("policies", addPolicy(cb.b, p).ID)
	return cb
}

// BrokerBuilder authors a Broker layer's configuration objects.
type BrokerBuilder struct {
	b     *Builder
	layer *metamodel.Object
}

// Done returns to the platform builder.
func (bb *BrokerBuilder) Done() *Builder { return bb.b }

// Action adds a call-handling action realised by resource steps.
func (bb *BrokerBuilder) Action(name, ops, guard string, steps ...StepSpec) *BrokerBuilder {
	o := bb.b.model.NewObject(bb.b.id("act"), ClassAction).
		SetAttr("name", name).
		SetAttr("ops", ops)
	if guard != "" {
		o.SetAttr("guard", guard)
	}
	bb.b.addSteps(o, "steps", steps)
	bb.layer.AddRef("actions", o.ID)
	return bb
}

// PassthroughAction is Action with forwardArgs set: the triggering
// call's arguments are copied onto every expanded resource command.
func (bb *BrokerBuilder) PassthroughAction(name, ops, guard string, steps ...StepSpec) *BrokerBuilder {
	bb.Action(name, ops, guard, steps...)
	last := bb.layer.Refs("actions")
	bb.b.model.Get(last[len(last)-1]).SetAttr("forwardArgs", true)
	return bb
}

// EventAction adds a resource-event handler entry.
func (bb *BrokerBuilder) EventAction(name, event, guard string, forward bool, steps ...StepSpec) *BrokerBuilder {
	o := bb.b.model.NewObject(bb.b.id("evact"), ClassEventAction).
		SetAttr("name", name).
		SetAttr("event", event).
		SetAttr("forward", forward)
	if guard != "" {
		o.SetAttr("guard", guard)
	}
	bb.b.addSteps(o, "steps", steps)
	bb.layer.AddRef("eventActions", o.ID)
	return bb
}

// Policy adds a policy to the layer.
func (bb *BrokerBuilder) Policy(p PolicySpec) *BrokerBuilder {
	bb.layer.AddRef("policies", addPolicy(bb.b, p).ID)
	return bb
}

// Symptom declares an autonomic symptom.
func (bb *BrokerBuilder) Symptom(name, condition string) *BrokerBuilder {
	o := bb.b.model.NewObject(bb.b.id("sym"), ClassSymptom).
		SetAttr("name", name).
		SetAttr("condition", condition)
	bb.layer.AddRef("symptoms", o.ID)
	return bb
}

// ChangePlan declares the change plan executed when a symptom fires.
func (bb *BrokerBuilder) ChangePlan(symptom string, steps ...StepSpec) *BrokerBuilder {
	o := bb.b.model.NewObject(bb.b.id("plan"), ClassChangePlan).
		SetAttr("symptom", symptom)
	bb.b.addSteps(o, "steps", steps)
	bb.layer.AddRef("changePlans", o.ID)
	return bb
}

// Bind routes a resource operation (or "*") to a named adapter from the
// DSK bundle.
func (bb *BrokerBuilder) Bind(op, adapter string) *BrokerBuilder {
	o := bb.b.model.NewObject(bb.b.id("bind"), ClassResourceBinding).
		SetAttr("op", op).
		SetAttr("adapter", adapter)
	bb.layer.AddRef("bindings", o.ID)
	return bb
}

func addPolicy(b *Builder, p PolicySpec) *metamodel.Object {
	o := b.model.NewObject(b.id("pol"), ClassPolicy).
		SetAttr("name", p.Name).
		SetAttr("priority", p.Priority).
		SetAttr("condition", p.Condition)
	for _, k := range sortedKeys(p.Effects) {
		eff := b.model.NewObject(b.id("eff"), ClassEffect).
			SetAttr("key", k).
			SetAttr("value", p.Effects[k])
		o.AddRef("effects", eff.ID)
	}
	return o
}
