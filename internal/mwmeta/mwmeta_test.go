package mwmeta

import (
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/metamodel"
)

func TestMMValidates(t *testing.T) {
	mm := MM()
	if mm.Name != Name {
		t.Errorf("name: %s", mm.Name)
	}
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	// All layer classes inherit from Layer.
	for _, c := range []string{ClassUILayer, ClassSynthesisLayer, ClassControllerLayer, ClassBrokerLayer} {
		if !mm.IsSubclassOf(c, ClassLayer) {
			t.Errorf("%s should be a Layer", c)
		}
	}
}

func TestMMSerializes(t *testing.T) {
	data, err := metamodel.MarshalMetamodel(MM())
	if err != nil {
		t.Fatal(err)
	}
	back, err := metamodel.UnmarshalMetamodel(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ClassNames()) != len(MM().ClassNames()) {
		t.Error("class count after round trip")
	}
}

func TestBuilderProducesConformingModel(t *testing.T) {
	b := NewBuilder("test-vm", "testing")
	b.UILayer("uci")
	b.SynthesisLayer("se", "sem")
	b.ControllerLayer("ucm").
		Options(8, true).
		Action("setMedia", "setMedia", "media != ''", StepSpec{
			Op: "reconfigure", Target: "{target}",
			Args: map[string]string{"media": "{media}"},
		}).
		EventAction("onFail", "streamFailed", "", false, "",
			StepSpec{Op: "recover", Target: "stream:{stream}"}).
		Class("play", "op.play").
		Policy(PolicySpec{Name: "mem", Priority: 5, Condition: "memoryLow",
			Effects: map[string]string{"case": "intent"}}).
		Done().
		BrokerLayer("ncb").
		Action("open", "svcOpen", "", StepSpec{Op: "openStream", Target: "{target}"}).
		EventAction("fwd", "*", "", true).
		Symptom("low", "battery < 20").
		ChangePlan("low", StepSpec{Op: "shed", Target: "d:1"}).
		Bind("*", "main").
		Policy(PolicySpec{Name: "p", Priority: 1, Condition: "true"})

	if err := b.Validate(); err != nil {
		t.Fatalf("builder model must conform: %v", err)
	}

	m := b.Model()
	if len(m.ObjectsOf(ClassPlatform)) != 1 {
		t.Error("one platform object")
	}
	mm := MM()
	layers := m.ObjectsKindOf(mm, ClassLayer)
	if len(layers) != 4 {
		t.Errorf("layers: %d", len(layers))
	}
	// Steps carry order and args.
	steps := m.ObjectsOf(ClassStep)
	if len(steps) != 4 {
		t.Errorf("steps: %d", len(steps))
	}
}

func TestBuilderModelSerializes(t *testing.T) {
	b := NewBuilder("vm", "d")
	b.BrokerLayer("ncb").Bind("*", "main")
	data, err := metamodel.MarshalModel(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	back, err := metamodel.UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(MM()); err != nil {
		t.Fatalf("round-tripped middleware model must conform: %v", err)
	}
	if !metamodel.Equal(b.Model(), back) {
		t.Error("round trip equality")
	}
}

func TestBuilderRejectsIncompleteModel(t *testing.T) {
	b := NewBuilder("vm", "d")
	// Platform without layers misses the required reference.
	err := b.Validate()
	if err == nil || !strings.Contains(err.Error(), "required reference") {
		t.Fatalf("got %v", err)
	}
}

func TestLayerSuppressionModels(t *testing.T) {
	// 2SVM smart object: controller + broker only.
	b := NewBuilder("2svm-object", "smartspace")
	b.ControllerLayer("mw").Done().BrokerLayer("broker").Bind("*", "main")
	if err := b.Validate(); err != nil {
		t.Fatalf("suppressed-layer model must conform: %v", err)
	}
}
