// Package mwmeta defines the common, domain-independent middleware
// metamodel at the heart of MD-DSM (paper §V-A, Figs. 5 and 6). A
// middleware model — an instance of this metamodel — describes the desired
// configuration of a platform: which layers exist, the actions and handlers
// of the Controller and Broker layers, command classification metadata,
// policies, and the autonomic manager's symptoms and change plans.
//
// The runtime package's component factory consumes validated middleware
// models to instantiate live platforms; this package also provides a
// Builder so middleware engineers can author models in code, and the JSON
// codec in the metamodel package lets them be stored and exchanged.
package mwmeta

import (
	"github.com/mddsm/mddsm/internal/metamodel"
)

// Name is the metamodel identity recorded in conforming models.
const Name = "mddsm-middleware"

// Class names of the middleware metamodel.
const (
	ClassPlatform        = "Platform"
	ClassLayer           = "Layer"
	ClassUILayer         = "UILayer"
	ClassSynthesisLayer  = "SynthesisLayer"
	ClassControllerLayer = "ControllerLayer"
	ClassBrokerLayer     = "BrokerLayer"
	ClassAction          = "Action"
	ClassEventAction     = "EventAction"
	ClassStep            = "Step"
	ClassArg             = "Arg"
	ClassCommandClass    = "CommandClass"
	ClassPolicy          = "Policy"
	ClassEffect          = "Effect"
	ClassSymptom         = "Symptom"
	ClassChangePlan      = "ChangePlan"
	ClassResourceBinding = "ResourceBinding"
)

// MM constructs the middleware metamodel. The result is freshly built on
// each call so callers may not mutate shared state; it always validates.
func MM() *metamodel.Metamodel {
	m := metamodel.New(Name)

	m.MustAddClass(&metamodel.Class{Name: ClassPlatform,
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			{Name: "domain", Kind: metamodel.KindString},
		},
		References: []metamodel.Reference{
			{Name: "layers", Target: ClassLayer, Containment: true, Many: true, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassLayer, Abstract: true,
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassUILayer, Super: ClassLayer})
	m.MustAddClass(&metamodel.Class{Name: ClassSynthesisLayer, Super: ClassLayer,
		Attributes: []metamodel.Attribute{
			// ltsName selects the labeled transition system from the DSK
			// bundle that encodes the domain synthesis semantics.
			{Name: "ltsName", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassControllerLayer, Super: ClassLayer,
		Attributes: []metamodel.Attribute{
			{Name: "maxDepth", Kind: metamodel.KindInt, Default: 16},
			{Name: "cacheEnabled", Kind: metamodel.KindBool, Default: true},
		},
		References: []metamodel.Reference{
			{Name: "actions", Target: ClassAction, Containment: true, Many: true},
			{Name: "eventActions", Target: ClassEventAction, Containment: true, Many: true},
			{Name: "classes", Target: ClassCommandClass, Containment: true, Many: true},
			{Name: "policies", Target: ClassPolicy, Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassBrokerLayer, Super: ClassLayer,
		References: []metamodel.Reference{
			{Name: "actions", Target: ClassAction, Containment: true, Many: true},
			{Name: "eventActions", Target: ClassEventAction, Containment: true, Many: true},
			{Name: "policies", Target: ClassPolicy, Containment: true, Many: true},
			{Name: "symptoms", Target: ClassSymptom, Containment: true, Many: true},
			{Name: "changePlans", Target: ClassChangePlan, Containment: true, Many: true},
			{Name: "bindings", Target: ClassResourceBinding, Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassAction,
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			// ops is a comma-separated operation list ("openStream,play").
			{Name: "ops", Kind: metamodel.KindString, Required: true},
			{Name: "guard", Kind: metamodel.KindString},
			{Name: "forwardArgs", Kind: metamodel.KindBool, Default: false},
		},
		References: []metamodel.Reference{
			{Name: "steps", Target: ClassStep, Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassEventAction,
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			{Name: "event", Kind: metamodel.KindString, Required: true},
			{Name: "guard", Kind: metamodel.KindString},
			{Name: "forward", Kind: metamodel.KindBool, Default: false},
			// scriptName selects an installed script from the DSK bundle
			// (Controller layer only).
			{Name: "scriptName", Kind: metamodel.KindString},
		},
		References: []metamodel.Reference{
			{Name: "steps", Target: ClassStep, Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassStep,
		Attributes: []metamodel.Attribute{
			{Name: "op", Kind: metamodel.KindString, Required: true},
			{Name: "target", Kind: metamodel.KindString},
			{Name: "order", Kind: metamodel.KindInt, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "args", Target: ClassArg, Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassArg,
		Attributes: []metamodel.Attribute{
			{Name: "key", Kind: metamodel.KindString, Required: true},
			{Name: "value", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassCommandClass,
		Attributes: []metamodel.Attribute{
			{Name: "op", Kind: metamodel.KindString, Required: true},
			{Name: "goalDsc", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassPolicy,
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			{Name: "priority", Kind: metamodel.KindInt, Default: 0},
			{Name: "condition", Kind: metamodel.KindString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "effects", Target: ClassEffect, Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassEffect,
		Attributes: []metamodel.Attribute{
			{Name: "key", Kind: metamodel.KindString, Required: true},
			// value uses the command-argument scalar syntax: numbers and
			// true/false keep their types, anything else is a string.
			{Name: "value", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassSymptom,
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			{Name: "condition", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassChangePlan,
		Attributes: []metamodel.Attribute{
			{Name: "symptom", Kind: metamodel.KindString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "steps", Target: ClassStep, Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: ClassResourceBinding,
		Attributes: []metamodel.Attribute{
			{Name: "op", Kind: metamodel.KindString, Required: true},
			{Name: "adapter", Kind: metamodel.KindString, Required: true},
		},
	})

	if err := m.Validate(); err != nil {
		// The metamodel is static program data; failing to validate is a
		// programming bug.
		panic(err)
	}
	return m
}
