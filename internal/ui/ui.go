// Package ui implements the User Interface layer of the MD-DSM reference
// architecture (paper §III). The original platforms leaned on Eclipse
// EMF/GMF-generated editors; here the layer provides the equivalent
// programmatic modeling environment: drafts edited against the DSML
// metamodel, local conformance validation, submission to the Synthesis
// layer, and observation of the runtime model published back by the
// dispatcher (models@runtime round trip).
package ui

import (
	"fmt"
	"sync"

	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/script"
)

// SubmitFunc delivers a user model to the Synthesis layer and returns the
// control script it produced.
type SubmitFunc func(*metamodel.Model) (*script.Script, error)

// UI is the live UI layer.
type UI struct {
	name   string
	dsml   *metamodel.Metamodel
	vcache *metamodel.ValidationCache
	submit SubmitFunc

	tracer   *obs.Tracer
	mSubmits *obs.Counter

	mu         sync.Mutex
	runtime    *metamodel.Model     // map-form fallback; authoritative when slotsValid is false
	slots      *metamodel.SlotModel // slot-form runtime model, storage reused across publishes
	slotsValid bool
	listeners  []func(*metamodel.Model)
}

// Option customises UI construction.
type Option func(*UI)

// WithObs attaches an observability pair to the layer; both arguments may
// be nil (disabled).
func WithObs(t *obs.Tracer, m *obs.Metrics) Option {
	return func(u *UI) {
		u.tracer = t
		u.mSubmits = m.Counter(obs.MUISubmits)
	}
}

// WithValidationCache shares a conformance-validation cache with the layer.
// Draft validation and woven-model checks then warm the same cache the
// Synthesis layer reads, so a model validated here is not re-validated on
// submission. A nil cache (the default) validates without memoisation.
func WithValidationCache(c *metamodel.ValidationCache) Option {
	return func(u *UI) { u.vcache = c }
}

// New builds a UI layer for a DSML. submit is normally the Synthesis
// layer's Submit method.
func New(name string, dsml *metamodel.Metamodel, submit SubmitFunc, opts ...Option) (*UI, error) {
	if dsml == nil {
		return nil, fmt.Errorf("ui %s: nil DSML metamodel", name)
	}
	if submit == nil {
		return nil, fmt.Errorf("ui %s: nil submit function", name)
	}
	u := &UI{
		name:    name,
		dsml:    dsml,
		submit:  submit,
		runtime: metamodel.NewModel(dsml.Name),
	}
	// Keep the published runtime model in slot form when the DSML compiles:
	// one set of typed columns reused across publishes instead of a full
	// map-of-maps clone per OnRuntimeModel. Falls back to map clones when
	// the metamodel does not compile or a published model is not canonical.
	if cm, err := dsml.Compiled(); err == nil {
		u.slots = metamodel.NewSlotModel(cm)
	}
	for _, o := range opts {
		o(u)
	}
	return u, nil
}

// Submit sends a complete application model through the layer to the
// Synthesis layer below: the programmatic equivalent of saving a finished
// diagram in the generated editors. Drafts route through here too, so
// every user submission crosses the ui.submit span.
func (u *UI) Submit(m *metamodel.Model) (*script.Script, error) {
	u.mSubmits.Inc()
	sp := u.tracer.Start(obs.SpanUISubmit)
	defer sp.End()
	return u.submit(m)
}

// Name returns the layer instance name.
func (u *UI) Name() string { return u.name }

// DSML returns the application modeling language metamodel.
func (u *UI) DSML() *metamodel.Metamodel { return u.dsml }

// NewDraft starts an empty model draft.
func (u *UI) NewDraft() *Draft {
	return &Draft{ui: u, model: metamodel.NewModel(u.dsml.Name)}
}

// EditDraft starts a draft seeded from the latest runtime model, the usual
// flow for incremental (models@runtime) updates.
func (u *UI) EditDraft() *Draft {
	return &Draft{ui: u, model: u.runtimeCopy()}
}

// RuntimeModel returns a copy of the last published runtime model.
func (u *UI) RuntimeModel() *metamodel.Model {
	return u.runtimeCopy()
}

// runtimeCopy materialises a caller-owned copy of the latest runtime model
// from whichever representation currently holds it.
func (u *UI) runtimeCopy() *metamodel.Model {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.slotsValid {
		return u.slots.Materialize()
	}
	return u.runtime.Clone()
}

// OnRuntimeModel receives the committed runtime model from the Synthesis
// dispatcher and notifies subscribers. The model is snapshotted into the
// reused slot representation; models the slot form cannot hold (metamodel
// drift, non-canonical values) fall back to a map clone.
func (u *UI) OnRuntimeModel(m *metamodel.Model) {
	u.mu.Lock()
	if u.slots != nil && u.slots.Load(m) == nil {
		u.slotsValid = true
		u.runtime = nil
	} else {
		u.slotsValid = false
		u.runtime = m.Clone()
	}
	listeners := make([]func(*metamodel.Model), len(u.listeners))
	copy(listeners, u.listeners)
	u.mu.Unlock()
	for _, fn := range listeners {
		fn(m.Clone())
	}
}

// Subscribe registers a listener for runtime-model updates.
func (u *UI) Subscribe(fn func(*metamodel.Model)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.listeners = append(u.listeners, fn)
}

// SubmitWoven weaves several concern models into one application model and
// submits the result (the paper's §IX multi-model execution: different
// models describe different concerns of the same application). The woven
// model is validated against the DSML before submission so weaving errors
// surface here rather than deep in synthesis.
func (u *UI) SubmitWoven(concerns ...*metamodel.Model) (*script.Script, error) {
	woven, err := metamodel.Merge(u.dsml.Name, concerns...)
	if err != nil {
		return nil, fmt.Errorf("ui %s: weave: %w", u.name, err)
	}
	if _, err := u.vcache.Validate(u.dsml, woven); err != nil {
		return nil, fmt.Errorf("ui %s: woven model does not conform: %w", u.name, err)
	}
	return u.Submit(woven)
}

// Draft is an editable model. It is not safe for concurrent use; each user
// session edits its own draft.
type Draft struct {
	ui    *UI
	model *metamodel.Model
}

// Add creates an object in the draft. Unknown or abstract classes are
// reported immediately — the editor equivalent of a greyed-out palette
// entry.
func (d *Draft) Add(id, class string) (*metamodel.Object, error) {
	c := d.ui.dsml.Class(class)
	if c == nil {
		return nil, fmt.Errorf("ui %s: unknown class %q", d.ui.name, class)
	}
	if c.Abstract {
		return nil, fmt.Errorf("ui %s: class %q is abstract", d.ui.name, class)
	}
	o := metamodel.NewObject(id, class)
	if err := d.model.Add(o); err != nil {
		return nil, fmt.Errorf("ui %s: %w", d.ui.name, err)
	}
	return o, nil
}

// MustAdd is Add that panics on error, for tests and examples where a
// failure is a programming bug.
func (d *Draft) MustAdd(id, class string) *metamodel.Object {
	o, err := d.Add(id, class)
	if err != nil {
		panic(err)
	}
	return o
}

// Object returns an object of the draft for editing, or nil.
func (d *Draft) Object(id string) *metamodel.Object { return d.model.Get(id) }

// Remove deletes an object from the draft along with any references other
// draft objects hold to it.
func (d *Draft) Remove(id string) error {
	if err := d.model.Delete(id); err != nil {
		return fmt.Errorf("ui %s: %w", d.ui.name, err)
	}
	for _, o := range d.model.Objects() {
		for _, ref := range o.RefNames() {
			o.RemoveRef(ref, id)
		}
	}
	return nil
}

// Model returns the draft's underlying model (shared, not a copy) for
// advanced edits.
func (d *Draft) Model() *metamodel.Model { return d.model }

// Validate checks draft conformance against the DSML without submitting.
// With a shared validation cache the result is memoised, so a subsequent
// Submit of the unmodified draft skips re-validation in Synthesis.
func (d *Draft) Validate() error {
	_, err := d.ui.vcache.Validate(d.ui.dsml, d.model)
	return err
}

// Submit sends the draft to the Synthesis layer and returns the control
// script the submission produced. The draft remains editable afterwards.
func (d *Draft) Submit() (*script.Script, error) {
	return d.ui.Submit(d.model)
}
