package ui

import (
	"errors"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/script"
)

func dsml(t *testing.T) *metamodel.Metamodel {
	t.Helper()
	mm := metamodel.New("toy")
	mm.MustAddClass(&metamodel.Class{Name: "Base", Abstract: true})
	mm.MustAddClass(&metamodel.Class{Name: "Thing", Super: "Base", Attributes: []metamodel.Attribute{
		{Name: "name", Kind: metamodel.KindString, Required: true},
	}, References: []metamodel.Reference{
		{Name: "next", Target: "Thing"},
	}})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	return mm
}

func newUI(t *testing.T) (*UI, *[]*metamodel.Model) {
	t.Helper()
	var submitted []*metamodel.Model
	u, err := New("ui", dsml(t), func(m *metamodel.Model) (*script.Script, error) {
		submitted = append(submitted, m.Clone())
		return script.New("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return u, &submitted
}

func TestConstructorValidation(t *testing.T) {
	if _, err := New("u", nil, func(*metamodel.Model) (*script.Script, error) { return nil, nil }); err == nil {
		t.Error("nil DSML")
	}
	if _, err := New("u", dsml(t), nil); err == nil {
		t.Error("nil submit")
	}
}

func TestDraftEditing(t *testing.T) {
	u, submitted := newUI(t)
	d := u.NewDraft()
	o, err := d.Add("t1", "Thing")
	if err != nil {
		t.Fatal(err)
	}
	o.SetAttr("name", "first")
	if _, err := d.Add("t1", "Thing"); err == nil {
		t.Error("duplicate ID")
	}
	if _, err := d.Add("x", "Ghost"); err == nil {
		t.Error("unknown class")
	}
	if _, err := d.Add("x", "Base"); err == nil {
		t.Error("abstract class")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("draft should validate: %v", err)
	}
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	if len(*submitted) != 1 || (*submitted)[0].Len() != 1 {
		t.Errorf("submitted: %v", *submitted)
	}
	if d.Object("t1") == nil || d.Object("ghost") != nil {
		t.Error("Object lookup")
	}
	if d.Model().Len() != 1 {
		t.Error("Model accessor")
	}
}

func TestDraftValidateCatchesMissingRequired(t *testing.T) {
	u, _ := newUI(t)
	d := u.NewDraft()
	d.MustAdd("t1", "Thing")
	if err := d.Validate(); err == nil {
		t.Error("missing required attribute must fail validation")
	}
}

func TestDraftRemoveCleansReferences(t *testing.T) {
	u, _ := newUI(t)
	d := u.NewDraft()
	d.MustAdd("a", "Thing").SetAttr("name", "a").SetRef("next", "b")
	d.MustAdd("b", "Thing").SetAttr("name", "b")
	if err := d.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if len(d.Object("a").Refs("next")) != 0 {
		t.Error("dangling reference must be cleaned")
	}
	if err := d.Remove("ghost"); err == nil {
		t.Error("removing absent object must fail")
	}
}

func TestRuntimeModelRoundTrip(t *testing.T) {
	u, _ := newUI(t)
	var notified int
	u.Subscribe(func(m *metamodel.Model) { notified++ })

	m := metamodel.NewModel("toy")
	m.NewObject("t1", "Thing").SetAttr("name", "live")
	u.OnRuntimeModel(m)

	if notified != 1 {
		t.Errorf("subscriber notifications: %d", notified)
	}
	got := u.RuntimeModel()
	if got.Len() != 1 || got.Get("t1").StringAttr("name") != "live" {
		t.Errorf("runtime model: %v", got.Objects())
	}
	// Mutating the returned copy must not affect the stored model.
	got.Get("t1").SetAttr("name", "hacked")
	if u.RuntimeModel().Get("t1").StringAttr("name") != "live" {
		t.Error("RuntimeModel must return a copy")
	}

	// EditDraft seeds from the runtime model.
	d := u.EditDraft()
	if d.Object("t1") == nil {
		t.Error("EditDraft must seed from runtime model")
	}
	d.Object("t1").SetAttr("name", "edited")
	if u.RuntimeModel().Get("t1").StringAttr("name") != "live" {
		t.Error("draft edits must not leak into the runtime model")
	}
}

func TestSubmitErrorsPropagate(t *testing.T) {
	u, err := New("u", dsml(t), func(*metamodel.Model) (*script.Script, error) {
		return nil, errors.New("synthesis says no")
	})
	if err != nil {
		t.Fatal(err)
	}
	d := u.NewDraft()
	d.MustAdd("t1", "Thing").SetAttr("name", "x")
	if _, err := d.Submit(); err == nil || !strings.Contains(err.Error(), "says no") {
		t.Errorf("got %v", err)
	}
}

func TestMustAddPanics(t *testing.T) {
	u, _ := newUI(t)
	d := u.NewDraft()
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd should panic on unknown class")
		}
	}()
	d.MustAdd("x", "Ghost")
}

func TestAccessors(t *testing.T) {
	u, _ := newUI(t)
	if u.Name() != "ui" || u.DSML() == nil {
		t.Error("accessors")
	}
}

func TestSubmitWoven(t *testing.T) {
	u, submitted := newUI(t)
	base := metamodel.NewModel("toy")
	base.NewObject("t1", "Thing").SetAttr("name", "core")
	extra := metamodel.NewModel("toy")
	extra.NewObject("t1", "Thing").SetRef("next", "t2")
	extra.NewObject("t2", "Thing").SetAttr("name", "concern")

	if _, err := u.SubmitWoven(base, extra); err != nil {
		t.Fatal(err)
	}
	if len(*submitted) != 1 {
		t.Fatalf("submissions: %d", len(*submitted))
	}
	woven := (*submitted)[0]
	if woven.Len() != 2 || woven.Get("t1").Ref("next") != "t2" {
		t.Errorf("woven model: %v", woven.Objects())
	}
}

func TestSubmitWovenErrors(t *testing.T) {
	u, _ := newUI(t)
	a := metamodel.NewModel("toy")
	a.NewObject("x", "Thing").SetAttr("name", "one")
	b := metamodel.NewModel("toy")
	b.NewObject("x", "Thing").SetAttr("name", "two")
	if _, err := u.SubmitWoven(a, b); err == nil || !strings.Contains(err.Error(), "weave") {
		t.Errorf("conflicting weave must fail: %v", err)
	}
	// A weave that produces a non-conformant model is rejected before
	// submission.
	c := metamodel.NewModel("toy")
	c.NewObject("y", "Thing") // missing required name
	if _, err := u.SubmitWoven(c); err == nil || !strings.Contains(err.Error(), "does not conform") {
		t.Errorf("non-conformant weave must fail: %v", err)
	}
}
