// Package simtime provides a clock abstraction with a deterministic virtual
// implementation. MD-DSM experiments that reproduce the paper's wall-clock
// response times (e.g. the adaptive-vs-non-adaptive Controller comparison)
// charge service latencies against a virtual clock so results are exact and
// machine-independent, while CPU-bound benchmarks use the real clock.
package simtime

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the time source used by simulated resources and scenario drivers.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep advances past d. On a virtual clock this is instantaneous in
	// real time but moves the virtual instant forward by d.
	Sleep(d time.Duration)
	// Since returns the elapsed duration from t to Now.
	Since(t time.Time) time.Duration
}

// RealClock delegates to the time package.
type RealClock struct{}

var _ Clock = RealClock{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration { return time.Since(t) }

// VirtualClock is a deterministic, manually advanced clock. The zero value is
// not usable; construct with NewVirtual. It is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*VirtualClock)(nil)

// NewVirtual returns a virtual clock starting at a fixed epoch so traces are
// reproducible across runs.
func NewVirtual() *VirtualClock {
	return &VirtualClock{now: time.Date(2017, time.June, 5, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the virtual instant by d without blocking.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Since implements Clock.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Advance moves the clock forward by d. It is an alias of Sleep that reads
// better at scenario-driver call sites.
func (c *VirtualClock) Advance(d time.Duration) { c.Sleep(d) }

// Stopwatch measures elapsed time on an arbitrary clock.
type Stopwatch struct {
	clock Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on clock.
func NewStopwatch(clock Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Elapsed returns the time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Since(s.start) }

// Restart resets the stopwatch start to now.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }

// FormatMillis renders a duration as fractional milliseconds, the unit used
// throughout the paper's evaluation section.
func FormatMillis(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d.Microseconds())/1000.0)
}
