package simtime

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestVirtualClockAdvances(t *testing.T) {
	c := NewVirtual()
	start := c.Now()
	c.Sleep(250 * time.Millisecond)
	if got := c.Since(start); got != 250*time.Millisecond {
		t.Errorf("Since: %v", got)
	}
	c.Advance(time.Second)
	if got := c.Since(start); got != 1250*time.Millisecond {
		t.Errorf("after Advance: %v", got)
	}
	// Negative sleeps are ignored.
	c.Sleep(-time.Hour)
	if got := c.Since(start); got != 1250*time.Millisecond {
		t.Errorf("negative sleep must not rewind: %v", got)
	}
}

func TestVirtualClockDeterministicEpoch(t *testing.T) {
	a, b := NewVirtual(), NewVirtual()
	if !a.Now().Equal(b.Now()) {
		t.Error("fresh virtual clocks must share the epoch")
	}
}

func TestVirtualClockConcurrency(t *testing.T) {
	c := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Since(NewVirtual().Now()); got != 8*time.Second {
		t.Errorf("8000 concurrent 1ms sleeps: %v", got)
	}
}

func TestRealClock(t *testing.T) {
	var c Clock = RealClock{}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Error("real clock must advance")
	}
}

func TestStopwatch(t *testing.T) {
	c := NewVirtual()
	sw := NewStopwatch(c)
	c.Sleep(300 * time.Millisecond)
	if sw.Elapsed() != 300*time.Millisecond {
		t.Errorf("Elapsed: %v", sw.Elapsed())
	}
	sw.Restart()
	if sw.Elapsed() != 0 {
		t.Errorf("after Restart: %v", sw.Elapsed())
	}
}

func TestFormatMillis(t *testing.T) {
	got := FormatMillis(1234567 * time.Microsecond)
	if !strings.Contains(got, "1234.567 ms") {
		t.Errorf("FormatMillis: %q", got)
	}
}
