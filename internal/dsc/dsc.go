// Package dsc implements Domain-Specific Classifiers (paper §V-B): a
// hierarchical taxonomy that categorises the operations and data of an
// application domain. DSCs act as interfaces with implicit domain
// constraints — procedures are classified by a DSC and may declare
// dependencies on DSCs, and the intent-model generator matches the two.
package dsc

import (
	"fmt"
	"sort"
)

// Category distinguishes what a classifier describes.
type Category int

// Classifier categories. Operation classifiers categorise domain operations
// by goal; Data classifiers name the data those operations concern (the
// paper: "with the purpose of being able to refer to these data as opposed
// to categorizing them").
const (
	Operation Category = iota + 1
	Data
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Operation:
		return "operation"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// DSC is one classifier in a domain taxonomy.
type DSC struct {
	// ID is the unique identifier, conventionally dotted
	// ("comm.session.establish").
	ID string
	// Name is the human-readable label.
	Name string
	// Domain names the application domain the classifier belongs to.
	Domain string
	// Category tells whether this classifies operations or names data.
	Category Category
	// Parent is the ID of the broader classifier, or "" for a root.
	Parent string
	// Description documents the business rule the classifier captures.
	Description string
}

// Taxonomy is a validated set of classifiers for one or more domains.
type Taxonomy struct {
	dscs map[string]*DSC
}

// NewTaxonomy returns an empty taxonomy.
func NewTaxonomy() *Taxonomy {
	return &Taxonomy{dscs: make(map[string]*DSC)}
}

// Add registers a classifier. It returns an error on duplicate or empty IDs.
func (t *Taxonomy) Add(d *DSC) error {
	if d.ID == "" {
		return fmt.Errorf("dsc with empty ID")
	}
	if _, ok := t.dscs[d.ID]; ok {
		return fmt.Errorf("duplicate dsc %q", d.ID)
	}
	t.dscs[d.ID] = d
	return nil
}

// MustAdd is Add that panics on error, for static DSK construction.
func (t *Taxonomy) MustAdd(d *DSC) *DSC {
	if err := t.Add(d); err != nil {
		panic(err)
	}
	return d
}

// Get returns the classifier with the given ID, or nil.
func (t *Taxonomy) Get(id string) *DSC { return t.dscs[id] }

// Len returns the number of classifiers.
func (t *Taxonomy) Len() int { return len(t.dscs) }

// IDs returns all classifier IDs sorted.
func (t *Taxonomy) IDs() []string {
	ids := make([]string, 0, len(t.dscs))
	for id := range t.dscs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ByCategory returns the classifiers with the given category, ordered by ID.
func (t *Taxonomy) ByCategory(c Category) []*DSC {
	var out []*DSC
	for _, id := range t.IDs() {
		if d := t.dscs[id]; d.Category == c {
			out = append(out, d)
		}
	}
	return out
}

// ByDomain returns the classifiers belonging to a domain, ordered by ID.
func (t *Taxonomy) ByDomain(domain string) []*DSC {
	var out []*DSC
	for _, id := range t.IDs() {
		if d := t.dscs[id]; d.Domain == domain {
			out = append(out, d)
		}
	}
	return out
}

// Validate checks parent resolution, hierarchy acyclicity, and that a child
// has the same category and domain as its parent.
func (t *Taxonomy) Validate() error {
	for _, id := range t.IDs() {
		d := t.dscs[id]
		if d.Parent == "" {
			continue
		}
		p := t.dscs[d.Parent]
		if p == nil {
			return fmt.Errorf("dsc %s: unknown parent %q", id, d.Parent)
		}
		if p.Category != d.Category {
			return fmt.Errorf("dsc %s: category %s differs from parent %s category %s",
				id, d.Category, p.ID, p.Category)
		}
		if p.Domain != d.Domain {
			return fmt.Errorf("dsc %s: domain %q differs from parent %s domain %q",
				id, d.Domain, p.ID, p.Domain)
		}
		// Cycle check by walking up with a visited set.
		seen := map[string]bool{id: true}
		for cur := d.Parent; cur != ""; {
			if seen[cur] {
				return fmt.Errorf("dsc %s: hierarchy cycle via %q", id, cur)
			}
			seen[cur] = true
			next := t.dscs[cur]
			if next == nil {
				break
			}
			cur = next.Parent
		}
	}
	return nil
}

// Subsumes reports whether ancestor equals descendant or is one of its
// transitive parents. Unknown IDs never subsume anything.
func (t *Taxonomy) Subsumes(ancestor, descendant string) bool {
	if t.dscs[ancestor] == nil {
		return false
	}
	seen := make(map[string]bool)
	for cur := descendant; cur != ""; {
		if cur == ancestor {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		d := t.dscs[cur]
		if d == nil {
			return false
		}
		cur = d.Parent
	}
	return false
}

// Satisfies reports whether a procedure classified by provided can stand in
// for a dependency on required: the provided classifier must be required
// itself or a specialisation of it.
func (t *Taxonomy) Satisfies(provided, required string) bool {
	return t.Subsumes(required, provided)
}

// Depth returns the number of ancestors above the classifier (roots have
// depth 0). Unknown IDs return -1.
func (t *Taxonomy) Depth(id string) int {
	d := t.dscs[id]
	if d == nil {
		return -1
	}
	depth := 0
	seen := make(map[string]bool)
	for cur := d.Parent; cur != ""; {
		if seen[cur] {
			return -1
		}
		seen[cur] = true
		p := t.dscs[cur]
		if p == nil {
			break
		}
		depth++
		cur = p.Parent
	}
	return depth
}

// Children returns the direct children of a classifier, ordered by ID.
func (t *Taxonomy) Children(id string) []*DSC {
	var out []*DSC
	for _, cid := range t.IDs() {
		if t.dscs[cid].Parent == id {
			out = append(out, t.dscs[cid])
		}
	}
	return out
}
