package dsc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func commTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	tx := NewTaxonomy()
	add := func(id, parent string, cat Category) {
		tx.MustAdd(&DSC{ID: id, Name: id, Domain: "comm", Category: cat, Parent: parent})
	}
	add("comm.session", "", Operation)
	add("comm.session.establish", "comm.session", Operation)
	add("comm.session.establish.secure", "comm.session.establish", Operation)
	add("comm.session.teardown", "comm.session", Operation)
	add("comm.media", "", Operation)
	add("comm.media.stream", "comm.media", Operation)
	add("comm.data.profile", "", Data)
	add("comm.data.profile.contact", "comm.data.profile", Data)
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestAddErrors(t *testing.T) {
	tx := NewTaxonomy()
	if err := tx.Add(&DSC{ID: ""}); err == nil {
		t.Error("empty ID must fail")
	}
	if err := tx.Add(&DSC{ID: "a"}); err != nil {
		t.Error(err)
	}
	if err := tx.Add(&DSC{ID: "a"}); err == nil {
		t.Error("duplicate must fail")
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("unknown parent", func(t *testing.T) {
		tx := NewTaxonomy()
		tx.MustAdd(&DSC{ID: "a", Parent: "ghost", Category: Operation})
		if err := tx.Validate(); err == nil || !strings.Contains(err.Error(), "unknown parent") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("category mismatch", func(t *testing.T) {
		tx := NewTaxonomy()
		tx.MustAdd(&DSC{ID: "p", Category: Operation})
		tx.MustAdd(&DSC{ID: "c", Parent: "p", Category: Data})
		if err := tx.Validate(); err == nil || !strings.Contains(err.Error(), "category") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("domain mismatch", func(t *testing.T) {
		tx := NewTaxonomy()
		tx.MustAdd(&DSC{ID: "p", Category: Operation, Domain: "a"})
		tx.MustAdd(&DSC{ID: "c", Parent: "p", Category: Operation, Domain: "b"})
		if err := tx.Validate(); err == nil || !strings.Contains(err.Error(), "domain") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		tx := NewTaxonomy()
		tx.MustAdd(&DSC{ID: "a", Parent: "b", Category: Operation})
		tx.MustAdd(&DSC{ID: "b", Parent: "a", Category: Operation})
		if err := tx.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Errorf("got %v", err)
		}
	})
}

func TestSubsumes(t *testing.T) {
	tx := commTaxonomy(t)
	tests := []struct {
		anc, desc string
		want      bool
	}{
		{"comm.session", "comm.session", true},
		{"comm.session", "comm.session.establish", true},
		{"comm.session", "comm.session.establish.secure", true},
		{"comm.session.establish", "comm.session", false},
		{"comm.media", "comm.session.establish", false},
		{"ghost", "comm.session", false},
		{"comm.session", "ghost", false},
	}
	for _, tt := range tests {
		if got := tx.Subsumes(tt.anc, tt.desc); got != tt.want {
			t.Errorf("Subsumes(%q, %q) = %v", tt.anc, tt.desc, got)
		}
	}
}

func TestSatisfies(t *testing.T) {
	tx := commTaxonomy(t)
	if !tx.Satisfies("comm.session.establish.secure", "comm.session.establish") {
		t.Error("a specialised provider satisfies a broader requirement")
	}
	if tx.Satisfies("comm.session", "comm.session.establish") {
		t.Error("a broader provider must not satisfy a narrower requirement")
	}
	if !tx.Satisfies("comm.media", "comm.media") {
		t.Error("exact match satisfies")
	}
}

func TestDepthChildrenCategories(t *testing.T) {
	tx := commTaxonomy(t)
	if d := tx.Depth("comm.session"); d != 0 {
		t.Errorf("root depth: %d", d)
	}
	if d := tx.Depth("comm.session.establish.secure"); d != 2 {
		t.Errorf("depth: %d", d)
	}
	if d := tx.Depth("ghost"); d != -1 {
		t.Errorf("unknown depth: %d", d)
	}
	kids := tx.Children("comm.session")
	if len(kids) != 2 || kids[0].ID != "comm.session.establish" {
		t.Errorf("children: %v", kids)
	}
	ops := tx.ByCategory(Operation)
	data := tx.ByCategory(Data)
	if len(ops) != 6 || len(data) != 2 {
		t.Errorf("categories: %d ops %d data", len(ops), len(data))
	}
	if got := len(tx.ByDomain("comm")); got != tx.Len() {
		t.Errorf("ByDomain: %d of %d", got, tx.Len())
	}
	if got := len(tx.ByDomain("nope")); got != 0 {
		t.Errorf("ByDomain(nope): %d", got)
	}
}

func TestCategoryString(t *testing.T) {
	if Operation.String() != "operation" || Data.String() != "data" {
		t.Error("category names")
	}
	if !strings.Contains(Category(9).String(), "9") {
		t.Error("unknown category")
	}
}

// randomTaxonomy builds a random forest (guaranteed acyclic by construction:
// parents always precede children).
func randomTaxonomy(r *rand.Rand, n int) *Taxonomy {
	tx := NewTaxonomy()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("d%d", i)
		parent := ""
		if len(ids) > 0 && r.Intn(3) > 0 {
			parent = ids[r.Intn(len(ids))]
		}
		tx.MustAdd(&DSC{ID: id, Domain: "x", Category: Operation, Parent: parent})
		ids = append(ids, id)
	}
	return tx
}

// Property: Subsumes is reflexive and transitive on random acyclic forests,
// and antisymmetric except for equality.
func TestSubsumesOrderProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTaxonomy(r, 3+r.Intn(20))
		if tx.Validate() != nil {
			return false
		}
		ids := tx.IDs()
		pick := func() string { return ids[r.Intn(len(ids))] }
		for i := 0; i < 30; i++ {
			a, b, c := pick(), pick(), pick()
			if !tx.Subsumes(a, a) {
				return false // reflexive
			}
			if tx.Subsumes(a, b) && tx.Subsumes(b, c) && !tx.Subsumes(a, c) {
				return false // transitive
			}
			if a != b && tx.Subsumes(a, b) && tx.Subsumes(b, a) {
				return false // antisymmetric
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Depth is consistent with the parent relation.
func TestDepthProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tx := randomTaxonomy(r, 2+r.Intn(20))
		for _, id := range tx.IDs() {
			d := tx.Get(id)
			if d.Parent == "" {
				if tx.Depth(id) != 0 {
					return false
				}
			} else if tx.Depth(id) != tx.Depth(d.Parent)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
