package core

import (
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
)

func TestCoverageComplete(t *testing.T) {
	r := &rec{}
	def := goodDef(t, r)
	cov, err := AnalyzeCoverage(def)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Fatalf("expected complete coverage, got unroutable %v", cov.UnroutableOps)
	}
	if cov.RoutedOps["startTask"] != "intent" {
		t.Errorf("startTask routing: %q", cov.RoutedOps["startTask"])
	}
	if cov.RoutedOps["stopTask"] != "action" {
		t.Errorf("stopTask routing: %q", cov.RoutedOps["stopTask"])
	}
	if !strings.Contains(cov.String(), "complete") {
		t.Errorf("report: %s", cov)
	}
}

func TestCoverageDetectsUnroutableOp(t *testing.T) {
	r := &rec{}
	def := goodDef(t, r)
	// Add a synthesis rule emitting an op no Controller routes.
	l := goodLTS()
	l.On("run", "add-ref:Task.next", "", "run",
		lts.CommandTemplate{Op: "chainTasks", Target: "task:{id}"})
	def.DSK.LTSes["sem"] = l
	cov, err := AnalyzeCoverage(def)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Complete() {
		t.Fatal("chainTasks must be reported unroutable")
	}
	if len(cov.UnroutableOps) != 1 || cov.UnroutableOps[0] != "chainTasks" {
		t.Errorf("unroutable: %v", cov.UnroutableOps)
	}
	if !strings.Contains(cov.String(), "chainTasks") {
		t.Errorf("report: %s", cov)
	}
}

func TestCoverageCatchAllAction(t *testing.T) {
	r := &rec{}
	def := goodDef(t, r)
	// Replace the controller action with a catch-all.
	b := mwmeta.NewBuilder("vm", "d")
	b.UILayer("ui")
	b.SynthesisLayer("se", "sem")
	b.ControllerLayer("ctl").
		PassthroughAction("all", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Done().
		BrokerLayer("brk").
		PassthroughAction("all", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	def.Middleware = b.Model()
	def.DSK.Procedures = nil
	cov, err := AnalyzeCoverage(def)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Fatalf("catch-all action must route everything: %v", cov.UnroutableOps)
	}
	for op, how := range cov.RoutedOps {
		if how != "action" {
			t.Errorf("%s routed %q", op, how)
		}
	}
}

func TestCoverageUnhandledClasses(t *testing.T) {
	r := &rec{}
	def := goodDef(t, r)
	// Extend the DSML with a class that has no synthesis semantics.
	def.DSML.MustAddClass(&metamodel.Class{Name: "Note"})
	cov, err := AnalyzeCoverage(def)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cov.UnhandledClasses {
		if c == "Note" {
			found = true
		}
	}
	if !found {
		t.Errorf("Note should be flagged as unhandled: %v", cov.UnhandledClasses)
	}
	if !strings.Contains(cov.String(), "Note") {
		t.Errorf("report: %s", cov)
	}
}

func TestCoverageErrors(t *testing.T) {
	if _, err := AnalyzeCoverage(Definition{Name: "x"}); err == nil {
		t.Error("nil middleware must fail")
	}
	bad := metamodel.NewModel(mwmeta.Name)
	bad.NewObject("x", "Bogus")
	if _, err := AnalyzeCoverage(Definition{Name: "x", Middleware: bad}); err == nil {
		t.Error("nonconforming middleware must fail")
	}
}
