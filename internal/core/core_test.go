package core

import (
	"strings"
	"sync"
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/script"
)

// rec is a thread-safe recording adapter.
type rec struct {
	mu    sync.Mutex
	trace script.Trace
}

func (r *rec) Execute(cmd script.Command) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace.Record(cmd)
	return nil
}

func (r *rec) text() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace.String()
}

func dsml(t testing.TB) *metamodel.Metamodel {
	t.Helper()
	mm := metamodel.New("app-dsml")
	mm.MustAddClass(&metamodel.Class{Name: "Task", Attributes: []metamodel.Attribute{
		{Name: "kind", Kind: metamodel.KindString, Required: true},
	}, References: []metamodel.Reference{
		{Name: "next", Target: "Task"},
	}})
	if err := mm.Validate(); err != nil {
		t.Fatal(err)
	}
	return mm
}

func goodLTS() *lts.LTS {
	l := lts.New("sem", "run")
	l.On("run", "add-object:Task", "", "run",
		lts.CommandTemplate{Op: "startTask", Target: "task:{id}",
			Args: map[string]string{"kind": "{kind}"}})
	l.On("run", "remove-object:Task", "", "run",
		lts.CommandTemplate{Op: "stopTask", Target: "task:{id}"})
	l.On("run", "set-attr:Task.kind", "", "run",
		lts.CommandTemplate{Op: "retask", Target: "task:{id}"})
	l.On("run", "add-ref:Task.next", "", "run")
	l.On("run", "event:taskDied", "", "run",
		lts.CommandTemplate{Op: "startTask", Target: "task:{task}",
			Args: map[string]string{"kind": "restart"}})
	return l
}

func taxonomy() *dsc.Taxonomy {
	tx := dsc.NewTaxonomy()
	tx.MustAdd(&dsc.DSC{ID: "op.start", Domain: "d", Category: dsc.Operation})
	return tx
}

func goodDef(t testing.TB, r *rec) Definition {
	t.Helper()
	b := mwmeta.NewBuilder("task-vm", "tasks")
	b.UILayer("ui")
	b.SynthesisLayer("se", "sem")
	b.ControllerLayer("ctl").
		Action("stop", "stopTask,retask", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Class("startTask", "op.start").
		Done().
		BrokerLayer("brk").
		PassthroughAction("all", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "main")
	return Definition{
		Name:       "taskdef",
		DSML:       dsml(t),
		Middleware: b.Model(),
		DSK: DSK{
			Taxonomy: taxonomy(),
			Procedures: []*registry.Procedure{{
				ID: "starter", ClassifiedBy: "op.start", Cost: 1,
				Unit: eu.NewUnit("starter", eu.Invoke("svcStart", "{target}", "kind", "kind")),
			}},
			LTSes:    map[string]*lts.LTS{"sem": goodLTS()},
			Adapters: map[string]broker.Adapter{"main": r},
		},
	}
}

func TestBuildAndRunEndToEnd(t *testing.T) {
	r := &rec{}
	p, err := Build(goodDef(t, r))
	if err != nil {
		t.Fatal(err)
	}
	draft := p.UI.NewDraft()
	draft.MustAdd("t1", "Task").SetAttr("kind", "batch")
	if _, err := draft.Submit(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.text(), `svcStart task:t1 kind="batch"`) {
		t.Errorf("trace:\n%s", r.text())
	}
	// Event-driven restart through synthesis (event:taskDied).
	if err := p.DeliverEvent(broker.Event{Name: "taskDied", Attrs: map[string]any{"task": "t1"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.text(), `svcStart task:t1 kind="restart"`) {
		t.Errorf("restart trace:\n%s", r.text())
	}
}

func TestValidateRejectsNonconformantLTS(t *testing.T) {
	type mut func(*lts.LTS)
	tests := []struct {
		name string
		add  mut
		want string
	}{
		{"unknown class", func(l *lts.LTS) { l.On("run", "add-object:Ghost", "", "run") }, "class \"Ghost\""},
		{"unknown attr", func(l *lts.LTS) { l.On("run", "set-attr:Task.ghost", "", "run") }, "no attribute"},
		{"unknown ref", func(l *lts.LTS) { l.On("run", "add-ref:Task.ghost", "", "run") }, "no reference"},
		{"bad attr pattern", func(l *lts.LTS) { l.On("run", "set-attr:Task", "", "run") }, "want <Class>.<attribute>"},
		{"bad ref pattern", func(l *lts.LTS) { l.On("run", "remove-ref:Task", "", "run") }, "want <Class>.<reference>"},
		{"unknown remove class", func(l *lts.LTS) { l.On("run", "remove-object:Ghost", "", "run") }, "class \"Ghost\""},
		{"unknown set class", func(l *lts.LTS) { l.On("run", "set-attr:Ghost.kind", "", "run") }, "class \"Ghost\""},
		{"unknown ref class", func(l *lts.LTS) { l.On("run", "add-ref:Ghost.next", "", "run") }, "class \"Ghost\""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := &rec{}
			def := goodDef(t, r)
			l := goodLTS()
			tt.add(l)
			def.DSK.LTSes["sem"] = l
			err := def.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("want %q, got %v", tt.want, err)
			}
		})
	}
}

func TestValidateAcceptsWildcardsAndFreeEvents(t *testing.T) {
	r := &rec{}
	def := goodDef(t, r)
	l := goodLTS()
	l.On("run", "*", "", "run")
	l.On("run", "add-object:*", "", "run")
	l.On("run", "event:anything", "", "run")
	l.On("run", "custom:vocabulary", "", "run")
	def.DSK.LTSes["sem"] = l
	if err := def.Validate(); err != nil {
		t.Fatalf("wildcards must be tolerated: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	r := &rec{}

	t.Run("nil middleware", func(t *testing.T) {
		def := goodDef(t, r)
		def.Middleware = nil
		if err := def.Validate(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad middleware model", func(t *testing.T) {
		def := goodDef(t, r)
		def.Middleware = metamodel.NewModel(mwmeta.Name)
		def.Middleware.NewObject("x", "Bogus")
		if err := def.Validate(); err == nil || !strings.Contains(err.Error(), "middleware model") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad dsml", func(t *testing.T) {
		def := goodDef(t, r)
		bad := metamodel.New("bad")
		bad.MustAddClass(&metamodel.Class{Name: "A", Super: "Ghost"})
		def.DSML = bad
		if err := def.Validate(); err == nil || !strings.Contains(err.Error(), "DSML") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad taxonomy", func(t *testing.T) {
		def := goodDef(t, r)
		tx := dsc.NewTaxonomy()
		tx.MustAdd(&dsc.DSC{ID: "a", Parent: "ghost", Category: dsc.Operation})
		def.DSK.Taxonomy = tx
		if err := def.Validate(); err == nil || !strings.Contains(err.Error(), "taxonomy") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("procedures without taxonomy", func(t *testing.T) {
		def := goodDef(t, r)
		def.DSK.Taxonomy = nil
		if err := def.Validate(); err == nil || !strings.Contains(err.Error(), "no taxonomy") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad procedure", func(t *testing.T) {
		def := goodDef(t, r)
		def.DSK.Procedures = append(def.DSK.Procedures, &registry.Procedure{
			ID: "bad", ClassifiedBy: "op.ghost",
		})
		if err := def.Validate(); err == nil || !strings.Contains(err.Error(), "unknown classifier") {
			t.Errorf("got %v", err)
		}
	})
	t.Run("bad lts", func(t *testing.T) {
		def := goodDef(t, r)
		bad := lts.New("sem", "a")
		bad.AddTransition(lts.Transition{From: "ghost", Event: "e", To: "a"})
		def.DSK.LTSes["sem"] = bad
		if err := def.Validate(); err == nil || !strings.Contains(err.Error(), "lts") {
			t.Errorf("got %v", err)
		}
	})
}

func TestBuildPropagatesRuntimeErrors(t *testing.T) {
	r := &rec{}
	def := goodDef(t, r)
	delete(def.DSK.Adapters, "main")
	_, err := Build(def)
	if err == nil || !strings.Contains(err.Error(), "unknown adapter") {
		t.Errorf("got %v", err)
	}
}

func TestDefinitionWithoutProceduresBuildsNoRepository(t *testing.T) {
	r := &rec{}
	def := goodDef(t, r)
	def.DSK.Procedures = nil
	// Remove the command class that would then dangle.
	for _, o := range def.Middleware.ObjectsOf(mwmeta.ClassCommandClass) {
		if err := def.Middleware.Delete(o.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range def.Middleware.ObjectsOf(mwmeta.ClassControllerLayer) {
		for _, ref := range o.Refs("classes") {
			o.RemoveRef("classes", ref)
		}
	}
	p, err := Build(def)
	if err != nil {
		t.Fatal(err)
	}
	if p.Controller == nil {
		t.Fatal("controller expected")
	}
}
