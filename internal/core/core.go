// Package core is the MD-DSM integration layer — the paper's primary
// contribution (§VI). It combines the two foundational principles:
//
//  1. model-based construction of middleware (§V-A): the structure of the
//     platform is described by a middleware model conforming to the common
//     middleware metamodel (package mwmeta), executed by the generic
//     runtime (package runtime); and
//  2. separation of domain knowledge from the model of execution (§V-B):
//     the operational semantics of the application DSML is supplied as a
//     DSK bundle — classifier taxonomy, procedures with execution units,
//     synthesis transition systems, installed scripts and resource
//     adapters — that the generated middleware interprets.
//
// A Definition pairs the two and Build turns it into a running platform,
// after cross-checking their conformance: the middleware model must be a
// valid instance of the middleware metamodel, the DSK must be internally
// consistent, and the synthesis semantics must speak about classes and
// features that actually exist in the application DSML.
package core

import (
	"fmt"
	"strings"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// DSK is the domain-specific knowledge bundle for one application domain.
type DSK struct {
	// Taxonomy is the domain's classifier hierarchy (required when
	// Procedures is non-empty).
	Taxonomy *dsc.Taxonomy
	// Procedures are the classified operations with their execution
	// units; they populate the Controller's repository.
	Procedures []*registry.Procedure
	// LTSes holds the synthesis semantics by name.
	LTSes map[string]*lts.LTS
	// Scripts holds installed scripts by name.
	Scripts map[string]*script.Script
	// Adapters holds resource adapters by name.
	Adapters map[string]broker.Adapter
}

// Definition is a complete MD-DSM platform description.
type Definition struct {
	// Name labels the definition in error messages.
	Name string
	// DSML is the application-level domain-specific modeling language.
	DSML *metamodel.Metamodel
	// Middleware is the middleware model (an instance of mwmeta.MM).
	Middleware *metamodel.Model
	// DSK supplies the domain semantics.
	DSK DSK
	// Clock charges virtual time; nil disables time accounting.
	Clock simtime.Clock
	// Obs observes every layer of the built platform (tracing + metrics);
	// nil disables observability.
	Obs *obs.Obs
	// Injector injects faults at the platform's named fault points; nil
	// (the default) disables injection.
	Injector *fault.Injector
	// Resilience configures retry, per-step timeout, and circuit-breaking
	// for the built platform; the zero value disables all three.
	Resilience fault.Resilience
}

// Validate cross-checks the definition without instantiating anything:
//
//   - the middleware model conforms to the middleware metamodel;
//   - the DSML and taxonomy are internally valid;
//   - every procedure's classifiers resolve (by building the repository);
//   - every LTS validates, and every class/feature its event patterns
//     mention exists in the DSML (middleware-model ↔ DSML conformance,
//     the assurance MD-DSM calls for in §IX).
func (d *Definition) Validate() error {
	if d.Middleware == nil {
		return fmt.Errorf("definition %s: nil middleware model", d.Name)
	}
	// Validating through the shared cache means the runtime factory's own
	// conformance check of the same content (Build → runtime.Build) is a
	// cache hit instead of a second full walk.
	if _, err := metamodel.SharedValidationCache().Validate(mwmeta.MM(), d.Middleware); err != nil {
		return fmt.Errorf("definition %s: middleware model: %w", d.Name, err)
	}
	if d.DSML != nil {
		if err := d.DSML.Validate(); err != nil {
			return fmt.Errorf("definition %s: DSML: %w", d.Name, err)
		}
	}
	if d.DSK.Taxonomy != nil {
		if err := d.DSK.Taxonomy.Validate(); err != nil {
			return fmt.Errorf("definition %s: taxonomy: %w", d.Name, err)
		}
	}
	if _, err := d.buildRepository(); err != nil {
		return fmt.Errorf("definition %s: %w", d.Name, err)
	}
	for name, l := range d.DSK.LTSes {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("definition %s: lts %s: %w", d.Name, name, err)
		}
		if d.DSML != nil {
			if err := checkLTSConformance(l, d.DSML); err != nil {
				return fmt.Errorf("definition %s: lts %s: %w", d.Name, name, err)
			}
		}
	}
	return nil
}

// buildRepository assembles the Controller's procedure repository from the
// DSK. It returns nil (no repository) when the DSK declares no procedures.
func (d *Definition) buildRepository() (*registry.Repository, error) {
	if len(d.DSK.Procedures) == 0 {
		return nil, nil
	}
	if d.DSK.Taxonomy == nil {
		return nil, fmt.Errorf("procedures declared but no taxonomy")
	}
	repo := registry.NewRepository(d.DSK.Taxonomy)
	for _, p := range d.DSK.Procedures {
		if err := repo.Add(p); err != nil {
			return nil, err
		}
	}
	return repo, nil
}

// Build validates the definition and instantiates the platform through the
// generic runtime's component factory.
func Build(def Definition, opts ...runtime.Option) (*runtime.Platform, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	repo, err := def.buildRepository()
	if err != nil {
		return nil, fmt.Errorf("definition %s: %w", def.Name, err)
	}
	p, err := runtime.Build(def.Middleware, runtime.Deps{
		DSML:       def.DSML,
		LTSes:      def.DSK.LTSes,
		Adapters:   def.DSK.Adapters,
		Repository: repo,
		Scripts:    def.DSK.Scripts,
		Clock:      def.Clock,
		Tracer:     def.Obs.TracerOf(),
		Metrics:    def.Obs.MetricsOf(),
		Injector:   def.Injector,
		Resilience: def.Resilience,
	}, opts...)
	if err != nil {
		return nil, fmt.Errorf("definition %s: %w", def.Name, err)
	}
	return p, nil
}

// Restore validates the definition and rebuilds a platform from a
// runtime.Checkpoint snapshot, binding it to the definition's DSK. The
// snapshot's middleware model replaces def.Middleware as the platform
// structure (it is the model the checkpointed platform actually ran), but
// the definition is still validated in full so the DSK the restored
// platform binds to is known-consistent.
func Restore(def Definition, snapshot []byte, opts ...runtime.Option) (*runtime.Platform, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	repo, err := def.buildRepository()
	if err != nil {
		return nil, fmt.Errorf("definition %s: %w", def.Name, err)
	}
	p, err := runtime.Restore(snapshot, runtime.Deps{
		DSML:       def.DSML,
		LTSes:      def.DSK.LTSes,
		Adapters:   def.DSK.Adapters,
		Repository: repo,
		Scripts:    def.DSK.Scripts,
		Clock:      def.Clock,
		Tracer:     def.Obs.TracerOf(),
		Metrics:    def.Obs.MetricsOf(),
		Injector:   def.Injector,
		Resilience: def.Resilience,
	}, opts...)
	if err != nil {
		return nil, fmt.Errorf("definition %s: %w", def.Name, err)
	}
	return p, nil
}

// checkLTSConformance verifies that the model-change event patterns of an
// LTS refer to classes and features the DSML actually declares, so that a
// middleware model cannot silently encode semantics for a different
// language than the one it claims to support.
func checkLTSConformance(l *lts.LTS, dsml *metamodel.Metamodel) error {
	for _, pattern := range l.EventPatterns() {
		kind, rest, found := strings.Cut(pattern, ":")
		if !found || strings.Contains(rest, "*") || pattern == "*" {
			continue // wildcard or non-model event
		}
		switch kind {
		case "add-object", "remove-object":
			if dsml.Class(rest) == nil {
				return fmt.Errorf("event %q: class %q not in DSML %s", pattern, rest, dsml.Name)
			}
		case "set-attr", "unset-attr":
			class, feat, ok := strings.Cut(rest, ".")
			if !ok {
				return fmt.Errorf("event %q: want <Class>.<attribute>", pattern)
			}
			if dsml.Class(class) == nil {
				return fmt.Errorf("event %q: class %q not in DSML %s", pattern, class, dsml.Name)
			}
			if _, found := dsml.FindAttribute(class, feat); !found {
				return fmt.Errorf("event %q: class %q has no attribute %q", pattern, class, feat)
			}
		case "add-ref", "remove-ref":
			class, feat, ok := strings.Cut(rest, ".")
			if !ok {
				return fmt.Errorf("event %q: want <Class>.<reference>", pattern)
			}
			if dsml.Class(class) == nil {
				return fmt.Errorf("event %q: class %q not in DSML %s", pattern, class, dsml.Name)
			}
			if _, found := dsml.FindReference(class, feat); !found {
				return fmt.Errorf("event %q: class %q has no reference %q", pattern, class, feat)
			}
		case "event":
			// Upward events are free-form.
		default:
			// Unknown kinds are tolerated: domains may define private
			// event vocabularies fed through Synthesis.OnEvent.
		}
	}
	return nil
}
