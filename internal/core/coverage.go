package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mddsm/mddsm/internal/mwmeta"
)

// Coverage is the result of analysing how completely a definition's
// middleware supports its application DSML — the systematic assurance the
// paper lists as a key research challenge (§IX: "an approach is also
// needed to systematically ensure that the generated MD-DSM adequately
// supports the application-level DSML").
type Coverage struct {
	// UnhandledClasses lists DSML classes whose creation (add-object) has
	// no synthesis semantics in any of the definition's LTSes. These are
	// warnings: passive vocabulary (e.g. Person in CML) is legitimate.
	UnhandledClasses []string
	// UnroutableOps lists operations the synthesis semantics can emit
	// that no Controller layer in the middleware model can execute —
	// neither a predefined action nor a command class routes them. These
	// are defects: a model change would fail at runtime.
	UnroutableOps []string
	// RoutedOps maps each emitted operation to how it is routed:
	// "action", "intent" or "action+intent".
	RoutedOps map[string]string
}

// Complete reports whether the analysis found no routing defects.
func (c Coverage) Complete() bool { return len(c.UnroutableOps) == 0 }

// String renders the coverage report.
func (c Coverage) String() string {
	var sb strings.Builder
	if c.Complete() {
		sb.WriteString("coverage: complete — every synthesised operation is routable\n")
	} else {
		fmt.Fprintf(&sb, "coverage: %d unroutable operation(s): %s\n",
			len(c.UnroutableOps), strings.Join(c.UnroutableOps, ", "))
	}
	ops := make([]string, 0, len(c.RoutedOps))
	for op := range c.RoutedOps {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&sb, "  %-24s -> %s\n", op, c.RoutedOps[op])
	}
	if len(c.UnhandledClasses) > 0 {
		fmt.Fprintf(&sb, "note: classes without creation semantics (passive vocabulary?): %s\n",
			strings.Join(c.UnhandledClasses, ", "))
	}
	return sb.String()
}

// AnalyzeCoverage cross-checks the definition's synthesis semantics against
// its middleware model: every operation an LTS can emit must be routable by
// a Controller layer, and DSML classes without creation semantics are
// surfaced as warnings. The definition should already Validate.
func AnalyzeCoverage(def Definition) (Coverage, error) {
	cov := Coverage{RoutedOps: make(map[string]string)}
	if def.Middleware == nil {
		return cov, fmt.Errorf("definition %s: nil middleware model", def.Name)
	}
	work := def.Middleware.Clone()
	if err := work.Validate(mwmeta.MM()); err != nil {
		return cov, fmt.Errorf("definition %s: middleware model: %w", def.Name, err)
	}

	// Gather the Controller layers' routing surface.
	actionOps := make(map[string]bool)
	catchAll := false
	classOps := make(map[string]bool)
	for _, layer := range work.ObjectsOf(mwmeta.ClassControllerLayer) {
		for _, actObj := range work.Resolve(layer, "actions") {
			for _, op := range strings.Split(actObj.StringAttr("ops"), ",") {
				if op == "" {
					continue
				}
				if op == "*" {
					catchAll = true
					continue
				}
				actionOps[op] = true
			}
		}
		for _, clObj := range work.Resolve(layer, "classes") {
			classOps[clObj.StringAttr("op")] = true
		}
	}

	// Every op the synthesis semantics can emit must be routable.
	emitted := make(map[string]bool)
	handledClasses := make(map[string]bool)
	for _, l := range def.DSK.LTSes {
		for _, op := range l.EmittedOps() {
			emitted[op] = true
		}
		for _, pattern := range l.EventPatterns() {
			if kind, rest, ok := strings.Cut(pattern, ":"); ok && kind == "add-object" {
				handledClasses[rest] = true
			}
		}
	}
	for op := range emitted {
		byAction := catchAll || actionOps[op]
		byIntent := classOps[op]
		switch {
		case byAction && byIntent:
			cov.RoutedOps[op] = "action+intent"
		case byAction:
			cov.RoutedOps[op] = "action"
		case byIntent:
			cov.RoutedOps[op] = "intent"
		default:
			cov.UnroutableOps = append(cov.UnroutableOps, op)
		}
	}
	sort.Strings(cov.UnroutableOps)

	if def.DSML != nil {
		for _, class := range def.DSML.ClassNames() {
			if c := def.DSML.Class(class); c != nil && c.Abstract {
				continue
			}
			if !handledClasses[class] && !handledClasses["*"] {
				cov.UnhandledClasses = append(cov.UnhandledClasses, class)
			}
		}
		sort.Strings(cov.UnhandledClasses)
	}
	return cov, nil
}
