package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// sessionModel loads the bundled CVM application model.
func sessionModel(t testing.TB) *metamodel.Model {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "session.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := metamodel.UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateAndDuplicate(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if err := s.Create("acme", "cml"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("acme", "cml"); err == nil {
		t.Error("duplicate create must fail")
	}
	if err := s.Create("", "cml"); err == nil {
		t.Error("empty tenant name must fail")
	}
	if err := s.Create("ghost", "no-such-bundle"); err == nil {
		t.Error("unknown bundle must fail")
	}
	if got := s.Tenants(); len(got) != 1 || got[0] != "acme" {
		t.Errorf("Tenants() = %v", got)
	}
}

// TestEvictionRoundtripDiffEqual pins the tentpole invariant: evicting a
// tenant and touching it back produces an equivalent models@runtime state.
func TestEvictionRoundtripDiffEqual(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if err := s.Create("acme", "cml"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitModel("acme", sessionModel(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("acme"); err != nil {
		t.Fatal(err)
	}
	parkedSnap, err := s.Snapshot("acme")
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Stat("acme")
	if err != nil {
		t.Fatal(err)
	}
	if st["resident"] != false {
		t.Fatalf("evicted tenant still resident: %v", st)
	}

	// Any routed work rehydrates; a command script is the natural touch.
	if err := s.Execute("acme", script.New("probe")); err != nil {
		t.Fatal(err)
	}
	st, err = s.Stat("acme")
	if err != nil {
		t.Fatal(err)
	}
	if st["resident"] != true {
		t.Fatalf("touched tenant not rehydrated: %v", st)
	}
	liveSnap, err := s.Snapshot("acme")
	if err != nil {
		t.Fatal(err)
	}
	same, err := runtime.SnapshotsEquivalent(parkedSnap, liveSnap)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("eviction roundtrip drifted:\nparked=%s\nlive=%s", parkedSnap, liveSnap)
	}
	if s.Obs().MetricsOf().CounterValue(obs.MServeRehydrations) != 1 {
		t.Error("rehydration not counted")
	}
}

// TestLRUEviction checks the residency cap evicts the least recently
// touched tenant, not an arbitrary one.
func TestLRUEviction(t *testing.T) {
	s := NewServer(Config{MaxResident: 2})
	defer s.Close()
	for _, name := range []string{"t1", "t2"} {
		if err := s.Create(name, "cml"); err != nil {
			t.Fatal(err)
		}
	}
	// Touch t1 so t2 becomes the LRU victim.
	if err := s.Execute("t1", script.New("touch")); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("t3", "cml"); err != nil {
		t.Fatal(err)
	}
	if s.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", s.Resident())
	}
	st, err := s.Stat("t2")
	if err != nil {
		t.Fatal(err)
	}
	if st["resident"] != false {
		t.Errorf("t2 should be parked, stat = %v", st)
	}
	for _, name := range []string{"t1", "t3"} {
		st, err := s.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		if st["resident"] != true {
			t.Errorf("%s should be resident, stat = %v", name, st)
		}
	}
}

// TestQuotaExactRejections pins the token bucket's accounting with a
// frozen clock: exactly burst posts are admitted, every further one is a
// counted rejection.
func TestQuotaExactRejections(t *testing.T) {
	frozen := time.Unix(1700000000, 0)
	s := NewServer(Config{
		Quota: Quota{EventRate: 0.001, EventBurst: 3},
		Now:   func() time.Time { return frozen },
	})
	defer s.Close()
	if err := s.Create("acme", "mgrid"); err != nil {
		t.Fatal(err)
	}
	const posts = 10
	admitted, rejected := 0, 0
	for i := 0; i < posts; i++ {
		if err := s.PostEvent("acme", broker.Event{Name: "telemetry", Attrs: map[string]any{}}); err != nil {
			rejected++
		} else {
			admitted++
		}
	}
	if admitted != 3 || rejected != 7 {
		t.Fatalf("admitted=%d rejected=%d, want 3/7", admitted, rejected)
	}
	if got := s.Obs().MetricsOf().CounterValue(obs.MServeThrottled); got != 7 {
		t.Errorf("serve.events.throttled = %d, want 7", got)
	}
	st, err := s.Stat("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := st["rejected"].(int64); got != 7 {
		t.Errorf("tenant rejected counter = %d, want 7", got)
	}
}

// TestQuotaRefills advances a fake clock and checks tokens come back at
// EventRate.
func TestQuotaRefills(t *testing.T) {
	now := time.Unix(1700000000, 0)
	s := NewServer(Config{
		Quota: Quota{EventRate: 2, EventBurst: 1}, // 1 token, +2/s
		Now:   func() time.Time { return now },
	})
	defer s.Close()
	if err := s.Create("acme", "mgrid"); err != nil {
		t.Fatal(err)
	}
	ev := broker.Event{Name: "telemetry", Attrs: map[string]any{}}
	if err := s.PostEvent("acme", ev); err != nil {
		t.Fatal(err)
	}
	if err := s.PostEvent("acme", ev); err == nil {
		t.Fatal("second immediate post must be throttled")
	}
	now = now.Add(time.Second) // refills 2 tokens, capped at burst 1
	if err := s.PostEvent("acme", ev); err != nil {
		t.Fatalf("post after refill: %v", err)
	}
	if err := s.PostEvent("acme", ev); err == nil {
		t.Fatal("burst cap must hold after refill")
	}
}

// TestFiftyTenantsSharedCache is the capacity acceptance check: ≥50
// resident platforms in one process, identical models validating through
// the one shared cache with hits counted across tenants.
func TestFiftyTenantsSharedCache(t *testing.T) {
	s := NewServer(Config{MaxResident: 64})
	defer s.Close()
	const n = 52
	for i := 0; i < n; i++ {
		bundle := "cml"
		if i%2 == 1 {
			bundle = "mgrid"
		}
		if err := s.Create(fmt.Sprintf("t%02d", i), bundle); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Resident(); got < 50 {
		t.Fatalf("resident = %d, want >= 50", got)
	}
	m := sessionModel(t)
	for i := 0; i < n; i += 2 {
		if _, err := s.SubmitModel(fmt.Sprintf("t%02d", i), m.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	// Every tenant Build validates the same middleware model per bundle,
	// and every cml tenant validated the same application model: the
	// shared cache must have produced cross-tenant hits.
	hits := s.Obs().MetricsOf().CounterValue(obs.MValidateCacheHits)
	if hits < n {
		t.Errorf("validate.cache.hits = %d across %d tenants, want >= %d", hits, n, n)
	}
}

// TestConcurrentLifecycle hammers create/post/evict/stat/rehydrate from
// many goroutines with a tiny residency cap, for the race detector.
func TestConcurrentLifecycle(t *testing.T) {
	s := NewServer(Config{MaxResident: 3})
	defer s.Close()
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		if err := s.Create(n, "mgrid"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				name := names[(g+i)%len(names)]
				switch i % 4 {
				case 0:
					_ = s.PostEvent(name, broker.Event{Name: "telemetry", Attrs: map[string]any{}})
				case 1:
					_, _ = s.Stat(name)
				case 2:
					_ = s.Evict(name) // racing evicts may fail; that's fine
				case 3:
					_ = s.Execute(name, script.New("touch"))
				}
			}
		}(g)
	}
	wg.Wait()
	// Every tenant must still be reachable and the cap must hold.
	if got := s.Resident(); got > 3 {
		t.Errorf("resident = %d, want <= 3", got)
	}
	for _, n := range names {
		if _, err := s.Stat(n); err != nil {
			t.Errorf("tenant %s lost: %v", n, err)
		}
	}
}

// TestServeOverWire runs the server behind remote.NewRouterServer and
// drives the full client surface: control verbs, tenant sessions, routed
// events and rejection of unknown tenants.
func TestServeOverWire(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	srv, err := remote.NewRouterServer(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := remote.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Control("create", "acme", map[string]any{"bundle": "mgrid"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Control("create", "acme", map[string]any{"bundle": "mgrid"}); err == nil {
		t.Error("duplicate create over wire must fail")
	}
	sess := c.Session("acme")
	if err := sess.PostEvent(broker.Event{Name: "telemetry", Attrs: map[string]any{}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Session("ghost").PostEvent(broker.Event{Name: "x"}); err == nil {
		t.Error("unknown tenant must be refused at the wire")
	}
	attrs, err := c.Control("stat", "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if attrs["resident"] != true || attrs["bundle"] != "mgrid" {
		t.Errorf("stat attrs = %v", attrs)
	}
	if _, err := c.Control("evict", "acme", nil); err != nil {
		t.Fatal(err)
	}
	attrs, err = c.Control("snapshot", "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := attrs["snapshot"].(string); len(snap) == 0 {
		t.Error("snapshot verb returned nothing")
	}
	// Touching the evicted tenant over the wire rehydrates it.
	if err := sess.PostEvent(broker.Event{Name: "telemetry", Attrs: map[string]any{}}); err != nil {
		t.Fatal(err)
	}
	attrs, err = c.Control("tenants", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if list, _ := attrs["tenants"].([]any); len(list) != 1 || list[0] != "acme" {
		t.Errorf("tenants = %v", attrs["tenants"])
	}
	if _, err := c.Control("obs", "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Control("bogus", "", nil); err == nil {
		t.Error("unknown verb must fail")
	}
}

// TestAccountingSurvivesEviction pins the churn-proof ledger: a tenant's
// event counters accumulate across evict/rehydrate cycles (the obs bundle
// is parked with the snapshot), so posted = delivered + failures +
// deadlettered + dropped holds for the tenant's whole life, not per
// residency.
func TestAccountingSurvivesEviction(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if err := s.Create("acme", "cml"); err != nil {
		t.Fatal(err)
	}
	post := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := s.PostEvent("acme", broker.Event{
				Name:  "mediaFailure",
				Attrs: map[string]any{"session": "s1", "key": fmt.Sprint(i)},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	post(10)
	if err := s.Evict("acme"); err != nil {
		t.Fatal(err)
	}

	// Parked: the ledger must already show the first burst, fully drained.
	a, err := s.Accounting("acme")
	if err != nil {
		t.Fatal(err)
	}
	if a.Resident || a.Posted != 10 || !a.Exact() {
		t.Fatalf("parked ledger wrong: %+v", a)
	}

	post(15) // rehydrates on first post
	if err := s.Evict("acme"); err != nil {
		t.Fatal(err)
	}
	a, err = s.Accounting("acme")
	if err != nil {
		t.Fatal(err)
	}
	if a.Posted != 25 {
		t.Fatalf("ledger reset across rehydrate: posted = %d, want 25", a.Posted)
	}
	if !a.Exact() {
		t.Fatalf("accounting not exact after churn: %+v", a)
	}
	if a.Bundle != "cml" {
		t.Errorf("Accounting Bundle = %q", a.Bundle)
	}
	st, err := s.Stat("acme")
	if err != nil {
		t.Fatal(err)
	}
	if st["posted"] != int64(25) {
		t.Errorf("Stat posted = %v, want 25", st["posted"])
	}
}
