// Package serve is the multi-tenant platform server behind mddsm-serve:
// one process provisioning an MD-DSM platform per tenant, keyed by a
// registered domain bundle, multiplexed over the internal/remote wire.
//
// Each tenant owns a full platform (built through the domains registry
// with its own observability bundle and per-tenant runtime quota) while
// the expensive machinery is shared: all tenants validate against one
// content-hash validation cache and — via the bundles' memoised DSML
// instances — one compiled conformance validator per domain, so the
// hundredth tenant of a bundle pays cache-hit prices for what the first
// tenant compiled.
//
// Residency is bounded: past Config.MaxResident live platforms, the
// least-recently-touched tenant is evicted — checkpointed through the
// runtime's snapshot format, stopped, and parked as bytes. The next frame
// naming an evicted tenant rehydrates it through domains.Restore before
// routing, so eviction is invisible to clients beyond latency. Event
// intake is quota'd per tenant by a token bucket (Quota.EventRate /
// EventBurst) in front of the pump's own bounded queues; a throttled or
// overflowed post is an exactly-counted rejection, never a block.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/domains"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// DefaultMaxResident bounds live platforms when Config.MaxResident is 0.
const DefaultMaxResident = 64

// Sentinel errors, wrapped into the contextual messages the Server
// returns so transports (the HTTP API) can map refusal classes to status
// codes with errors.Is instead of parsing message text.
var (
	// ErrNoTenant marks a request naming a tenant that is neither
	// resident nor parked.
	ErrNoTenant = errors.New("no such tenant")
	// ErrThrottled marks an event refused by the tenant's rate quota.
	ErrThrottled = errors.New("over event rate quota")
	// ErrQueueFull marks an event refused by the pump's bounded queue.
	ErrQueueFull = errors.New("event queue full")
	// ErrTenantExists marks a Create naming a tenant that already exists,
	// resident or parked.
	ErrTenantExists = errors.New("exists")
)

// Quota bounds one tenant's resource consumption.
type Quota struct {
	// Runtime is the tenant platform's tuning profile (pump queue depth,
	// shard count, DLQ capacity, ...). Its ValidationCache field is
	// overwritten by the server's shared cache unless explicitly set.
	Runtime runtime.Config
	// EventRate is the sustained events/second admitted per tenant; <= 0
	// means unlimited.
	EventRate float64
	// EventBurst is the token-bucket depth (default 1 when EventRate > 0).
	EventBurst int
}

// Config configures a Server.
type Config struct {
	// MaxResident caps simultaneously live platforms (0 means
	// DefaultMaxResident). The overflow is parked as checkpoints.
	MaxResident int
	// Quota is applied to every tenant.
	Quota Quota
	// Obs receives the server-wide metrics: residency gauges,
	// eviction/rehydration counters, throttle counts and the shared
	// validation cache's hit/miss counters. Nil means a private bundle
	// (readable via Server.Obs).
	Obs *obs.Obs
	// Now is the token-bucket time source (nil means time.Now); tests
	// inject a fake clock for exact quota accounting.
	Now func() time.Time
	// Injector arms every tenant platform's fault points (nil disables).
	// One injector is shared across tenants, so a seeded chaos/soak run
	// draws faults from a single deterministic stream.
	Injector *fault.Injector
}

// bucket is a token bucket: tokens refill at rate/s up to burst, one token
// per admitted event.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(q Quota, now time.Time) *bucket {
	if q.EventRate <= 0 {
		return nil // unlimited
	}
	burst := float64(q.EventBurst)
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: q.EventRate, burst: burst, tokens: burst, last: now}
}

func (b *bucket) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens += el * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// tenant is one resident platform.
type tenant struct {
	name   string
	bundle string
	inst   *domains.Instance
	obs    *obs.Obs
	bucket *bucket
	touch  uint64 // LRU ticket: higher = more recent
}

// parked is one evicted tenant: its platform state as a checkpoint, plus
// the tenant's obs bundle so per-tenant counters survive the park —
// rehydration continues the same accounting stream instead of resetting
// it, which is what lets the soak harness assert exact per-tenant
// accounting across arbitrary evict/rehydrate churn.
type parked struct {
	bundle   string
	snapshot []byte
	obs      *obs.Obs
}

// Server is the multi-tenant platform host. It implements remote.Router
// and remote.Control, so remote.NewRouterServer(s, addr) exposes it on the
// wire.
type Server struct {
	cfg    Config
	obs    *obs.Obs
	now    func() time.Time
	vcache *metamodel.ValidationCache

	gResident     *obs.Gauge
	gParked       *obs.Gauge
	mCreated      *obs.Counter
	mEvictions    *obs.Counter
	mRehydrations *obs.Counter
	mThrottled    *obs.Counter

	mu      sync.Mutex
	tenants map[string]*tenant
	parked  map[string]*parked
	// carried holds accounting ledgers that arrived with adopted tenants
	// (live migration / failover): the counters a tenant accumulated on
	// other nodes before landing here. Accounting and Stat fold them in so
	// a tenant's ledger stays exact across moves.
	carried map[string]Accounting
	seq     uint64
	closed  bool
	// observer, when set, receives every runtime model a tenant's
	// Synthesis layer commits (see SetModelObserver).
	observer func(tenant string, m *metamodel.Model)
}

// NewServer builds a tenant host. Unless the quota names a validation
// cache explicitly, the server creates one and shares it across every
// tenant, with its hit/miss counters bound to the server's obs bundle —
// identical models submitted by different tenants validate once.
func NewServer(cfg Config) *Server {
	if cfg.MaxResident <= 0 {
		cfg.MaxResident = DefaultMaxResident
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &Server{
		cfg:           cfg,
		obs:           o,
		now:           now,
		gResident:     o.MetricsOf().Gauge(obs.MServeTenantsResident),
		gParked:       o.MetricsOf().Gauge(obs.MServeTenantsParked),
		mCreated:      o.MetricsOf().Counter(obs.MServeCreated),
		mEvictions:    o.MetricsOf().Counter(obs.MServeEvictions),
		mRehydrations: o.MetricsOf().Counter(obs.MServeRehydrations),
		mThrottled:    o.MetricsOf().Counter(obs.MServeThrottled),
		tenants:       make(map[string]*tenant),
		parked:        make(map[string]*parked),
		carried:       make(map[string]Accounting),
	}
	if cfg.Quota.Runtime.ValidationCache == nil && !cfg.Quota.Runtime.DisableValidationCache {
		s.vcache = metamodel.NewValidationCache(metamodel.DefaultValidationCacheSize)
		s.vcache.BindMetrics(o.MetricsOf())
	}
	return s
}

// Obs returns the server-wide observability bundle.
func (s *Server) Obs() *obs.Obs { return s.obs }

// tenantConfig is the per-tenant domains.Config: the shared quota profile
// with the server's shared validation cache and a fresh obs bundle.
func (s *Server) tenantConfig(to *obs.Obs) domains.Config {
	rt := s.cfg.Quota.Runtime
	if s.vcache != nil {
		rt.ValidationCache = s.vcache
	}
	return domains.Config{Runtime: rt, Obs: to, Injector: s.cfg.Injector}
}

// Create provisions a fresh tenant on the named bundle and starts its
// platform. The name must be new — neither resident nor parked.
func (s *Server) Create(name, bundle string) error {
	if name == "" {
		return fmt.Errorf("serve: tenant name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: server closed")
	}
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("serve: tenant %q %w", name, ErrTenantExists)
	}
	if _, ok := s.parked[name]; ok {
		return fmt.Errorf("serve: tenant %q %w (parked)", name, ErrTenantExists)
	}
	to := obs.New()
	inst, err := domains.New(bundle, s.tenantConfig(to))
	if err != nil {
		return err
	}
	if err := s.makeRoomLocked(); err != nil {
		inst.Close()
		return err
	}
	inst.Platform.Start()
	s.seq++
	t := &tenant{
		name: name, bundle: bundle, inst: inst, obs: to,
		bucket: newBucket(s.cfg.Quota, s.now()), touch: s.seq,
	}
	s.tenants[name] = t
	s.watchLocked(t)
	s.mCreated.Inc()
	s.gResident.Set(int64(len(s.tenants)))
	return nil
}

// makeRoomLocked evicts least-recently-touched tenants until a new
// resident fits under MaxResident. s.mu must be held.
func (s *Server) makeRoomLocked() error {
	for len(s.tenants) >= s.cfg.MaxResident {
		victim := ""
		var oldest uint64
		for name, t := range s.tenants {
			if victim == "" || t.touch < oldest {
				victim, oldest = name, t.touch
			}
		}
		if err := s.evictLocked(victim); err != nil {
			return err
		}
	}
	return nil
}

// evictLocked checkpoints, stops and parks one resident tenant. s.mu must
// be held.
func (s *Server) evictLocked(name string) error {
	t, ok := s.tenants[name]
	if !ok {
		return fmt.Errorf("serve: tenant %q not resident", name)
	}
	// Quiesce: stop-with-drain (exact accounting) then checkpoint the
	// settled state. On checkpoint failure Quiesce restarts the platform,
	// so the tenant is never stranded half-evicted.
	snap, err := t.inst.Platform.Quiesce()
	if err != nil {
		return fmt.Errorf("serve: evict %s: %w", name, err)
	}
	delete(s.tenants, name)
	s.parked[name] = &parked{bundle: t.bundle, snapshot: snap, obs: t.obs}
	s.mEvictions.Inc()
	s.gResident.Set(int64(len(s.tenants)))
	s.gParked.Set(int64(len(s.parked)))
	return nil
}

// Evict forces one tenant out of residency (checkpoint → stop → park).
func (s *Server) Evict(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictLocked(name)
}

// resident returns the named tenant's live handle, rehydrating it from its
// parked checkpoint if eviction put it to sleep. Every call refreshes the
// tenant's LRU ticket.
func (s *Server) resident(name string) (*tenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: server closed")
	}
	if t, ok := s.tenants[name]; ok {
		s.seq++
		t.touch = s.seq
		return t, nil
	}
	p, ok := s.parked[name]
	if !ok {
		return nil, fmt.Errorf("serve: %w %q", ErrNoTenant, name)
	}
	// Rehydrate onto the tenant's own obs bundle (parked alongside the
	// snapshot), so the counters continue rather than restart.
	to := p.obs
	if to == nil {
		to = obs.New()
	}
	inst, err := domains.Restore(p.bundle, p.snapshot, s.tenantConfig(to))
	if err != nil {
		return nil, fmt.Errorf("serve: rehydrate %s: %w", name, err)
	}
	if err := s.makeRoomLocked(); err != nil {
		inst.Close()
		return nil, err
	}
	inst.Platform.Start()
	delete(s.parked, name)
	s.seq++
	t := &tenant{
		name: name, bundle: p.bundle, inst: inst, obs: to,
		bucket: newBucket(s.cfg.Quota, s.now()), touch: s.seq,
	}
	s.tenants[name] = t
	s.watchLocked(t)
	s.mRehydrations.Inc()
	s.gResident.Set(int64(len(s.tenants)))
	s.gParked.Set(int64(len(s.parked)))
	return t, nil
}

// PostEvent admits one event into a tenant's platform through its rate
// quota and the pump's bounded queue. Both refusals are exactly counted:
// a throttle in the server's serve.events.throttled and the tenant's
// pump.events.rejected, an overflow in the tenant's pump.events.rejected
// alone (the pump counts it).
func (s *Server) PostEvent(name string, ev broker.Event) error {
	t, err := s.resident(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	ok := t.bucket.allow(s.now())
	s.mu.Unlock()
	if !ok {
		s.mThrottled.Inc()
		t.obs.MetricsOf().Counter(obs.MEventsRejected).Inc()
		return fmt.Errorf("serve: tenant %q %w", name, ErrThrottled)
	}
	if !t.inst.Platform.PostEvent(ev) {
		return fmt.Errorf("serve: tenant %q %w", name, ErrQueueFull)
	}
	return nil
}

// Execute runs one command script on a tenant's Controller.
func (s *Server) Execute(name string, sc *script.Script) error {
	t, err := s.resident(name)
	if err != nil {
		return err
	}
	return t.inst.Platform.Execute(sc)
}

// SubmitModel submits an application model into a tenant's UI layer.
func (s *Server) SubmitModel(name string, m *metamodel.Model) (*script.Script, error) {
	t, err := s.resident(name)
	if err != nil {
		return nil, err
	}
	return t.inst.Platform.SubmitModel(m)
}

// Snapshot returns the tenant's current models@runtime checkpoint —
// live from the platform when resident, the parked bytes when evicted.
func (s *Server) Snapshot(name string) ([]byte, error) {
	s.mu.Lock()
	if p, ok := s.parked[name]; ok {
		snap := make([]byte, len(p.snapshot))
		copy(snap, p.snapshot)
		s.mu.Unlock()
		return snap, nil
	}
	t, ok := s.tenants[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: %w %q", ErrNoTenant, name)
	}
	return t.inst.Platform.Checkpoint()
}

// watchLocked subscribes the server's model observer to a tenant's UI
// layer, stamping the tenant name onto every published model. s.mu must be
// held.
func (s *Server) watchLocked(t *tenant) {
	if s.observer == nil || t.inst.Platform.UI == nil {
		return
	}
	name, fn := t.name, s.observer
	t.inst.Platform.UI.Subscribe(func(m *metamodel.Model) { fn(name, m) })
}

// SetModelObserver installs a hook that receives every runtime model a
// tenant's Synthesis layer commits — the feed the HTTP watch streams fan
// out from. The hook applies to tenants created or rehydrated afterwards
// and is retroactively subscribed to already-resident tenants; install it
// once, before serving traffic. The callback runs on the committing
// goroutine, carries a caller-owned model clone, and must not call back
// into the Server.
func (s *Server) SetModelObserver(fn func(tenant string, m *metamodel.Model)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
	for _, t := range s.tenants {
		s.watchLocked(t)
	}
}

// Model returns a copy of the tenant's committed application model
// together with the DSML metamodel it conforms to, rehydrating the tenant
// if eviction parked it. Platforms without a UI layer read through the
// Synthesis layer; a platform with neither has no application model.
func (s *Server) Model(name string) (*metamodel.Model, *metamodel.Metamodel, error) {
	t, err := s.resident(name)
	if err != nil {
		return nil, nil, err
	}
	p := t.inst.Platform
	switch {
	case p.UI != nil:
		return p.UI.RuntimeModel(), p.UI.DSML(), nil
	case p.Synthesis != nil:
		return p.Synthesis.CurrentModel(), p.Synthesis.DSML(), nil
	default:
		return nil, nil, fmt.Errorf("serve: tenant %q has no model layer", name)
	}
}

// EachTenantObs visits every tenant's observability bundle (resident and
// parked) in name-sorted order. The bundles are live; exporters read them
// without copying. The server lock is not held during the visits.
func (s *Server) EachTenantObs(f func(tenant string, o *obs.Obs, resident bool)) {
	type row struct {
		name     string
		o        *obs.Obs
		resident bool
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.tenants)+len(s.parked))
	for name, t := range s.tenants {
		rows = append(rows, row{name, t.obs, true})
	}
	for name, p := range s.parked {
		if p.obs != nil {
			rows = append(rows, row{name, p.obs, false})
		}
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		f(r.name, r.o, r.resident)
	}
}

// Health reports each resident tenant's supervised component states as
// "tenant/component" -> health ("healthy", "degraded", "quarantined").
// Parked tenants have no live components and are omitted.
func (s *Server) Health() map[string]string {
	s.mu.Lock()
	insts := make(map[string]*domains.Instance, len(s.tenants))
	for name, t := range s.tenants {
		insts[name] = t.inst
	}
	s.mu.Unlock()
	out := make(map[string]string, 2*len(insts))
	for name, inst := range insts {
		sup := inst.Platform.Supervisor()
		for _, comp := range []string{"pump", "monitor"} {
			out[name+"/"+comp] = sup.Health(comp).String()
		}
	}
	return out
}

// Stat describes one tenant: bundle, residency, and its platform's event
// accounting. Counters are reported for parked tenants too — the obs
// bundle is parked with the snapshot, so the numbers cover the tenant's
// whole life, not just the current residency.
func (s *Server) Stat(name string) (map[string]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.accountingLocked(name)
	if err != nil {
		return nil, err
	}
	st := map[string]any{
		"tenant": name, "bundle": a.Bundle, "resident": a.Resident,
		"posted": a.Posted, "delivered": a.Delivered, "failures": a.Failures,
		"deadlettered": a.DeadLettered, "dropped": a.Dropped, "rejected": a.Rejected,
	}
	if p, ok := s.parked[name]; ok {
		st["snapshotBytes"] = len(p.snapshot)
	}
	return st, nil
}

// Accounting is one tenant's exact event ledger, the typed counterpart of
// Stat's counters. The PR-3/PR-4 pump invariant per tenant is
//
//	Posted == Delivered + Failures + DeadLettered + Dropped
//
// once the tenant's platform has drained (stopped or evicted); Rejected
// events were never admitted and sit outside the equation.
type Accounting struct {
	Bundle       string
	Resident     bool
	Posted       int64
	Delivered    int64
	Failures     int64
	DeadLettered int64
	Dropped      int64
	Rejected     int64
}

// Exact reports whether the drained-pump accounting invariant holds.
func (a Accounting) Exact() bool {
	return a.Posted == a.Delivered+a.Failures+a.DeadLettered+a.Dropped
}

// Add sums two ledgers counter-wise, keeping a's identity fields. Cluster
// accounting folds per-node ledgers (and the ledger a migrated tenant
// carries with it) into one exact total this way.
func (a Accounting) Add(b Accounting) Accounting {
	a.Posted += b.Posted
	a.Delivered += b.Delivered
	a.Failures += b.Failures
	a.DeadLettered += b.DeadLettered
	a.Dropped += b.Dropped
	a.Rejected += b.Rejected
	return a
}

// Accounting returns the tenant's event ledger, resident or parked. The
// ledger folds in anything the tenant carried from previous homes (see
// Adopt), so the invariant spans the tenant's whole life, not just this
// node.
func (s *Server) Accounting(name string) (Accounting, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accountingLocked(name)
}

// Tenants lists every tenant, resident and parked, sorted by name.
func (s *Server) Tenants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tenants)+len(s.parked))
	for name := range s.tenants {
		out = append(out, name)
	}
	for name := range s.parked {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resident reports how many tenants are currently live.
func (s *Server) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// Close drains every resident platform (graceful stop, exact accounting)
// and refuses further work. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.tenants = map[string]*tenant{}
	s.mu.Unlock()
	for _, t := range tenants {
		t.inst.Platform.Stop()
	}
	s.gResident.Set(0)
}

// ---------------------------------------------------------------------------
// remote.Router / remote.Control
// ---------------------------------------------------------------------------

// tenantEndpoint routes one tenant's wire frames through the server, so
// quota enforcement and lazy rehydration apply per frame.
type tenantEndpoint struct {
	s    *Server
	name string
}

func (e tenantEndpoint) Execute(sc *script.Script) error {
	return e.s.Execute(e.name, sc)
}

func (e tenantEndpoint) DeliverEvent(ev broker.Event) error {
	return e.s.PostEvent(e.name, ev)
}

// Route implements remote.Router: frames for any known tenant (resident or
// parked) get an endpoint; unknown tenants are refused at the wire.
func (s *Server) Route(name string) (remote.Endpoint, error) {
	s.mu.Lock()
	_, live := s.tenants[name]
	_, sleeping := s.parked[name]
	s.mu.Unlock()
	if !live && !sleeping {
		return nil, fmt.Errorf("serve: %w %q", ErrNoTenant, name)
	}
	return tenantEndpoint{s: s, name: name}, nil
}

// Control implements remote.Control: the administrative verbs of the
// platform server.
//
//	create   args {"bundle": "cml"}         provision a tenant
//	evict    –                              checkpoint + park the tenant
//	stat     –                              tenant status + event counters
//	snapshot –                              models@runtime checkpoint JSON
//	submit   args {"model": <model JSON>}   submit an application model
//	tenants  –                              list all tenants
//	obs      –                              server-wide metrics snapshot
//	export   –                              quiesce + remove; returns the
//	                                        adoption package (bundle,
//	                                        snapshot, ledger)
//	adopt    args {"bundle","snapshot",     install an exported tenant
//	              "ledger"}
//	redeliver –                             replay the tenant's DLQ
//	forget   –                              drop a tenant without export
func (s *Server) Control(verb, tenantName string, args map[string]any) (map[string]any, error) {
	switch verb {
	case "create":
		bundle, _ := args["bundle"].(string)
		if bundle == "" {
			return nil, fmt.Errorf("serve: create needs args.bundle")
		}
		return nil, s.Create(tenantName, bundle)
	case "evict":
		return nil, s.Evict(tenantName)
	case "stat":
		return s.Stat(tenantName)
	case "snapshot":
		snap, err := s.Snapshot(tenantName)
		if err != nil {
			return nil, err
		}
		return map[string]any{"snapshot": string(snap)}, nil
	case "submit":
		raw, err := json.Marshal(args["model"])
		if err != nil {
			return nil, fmt.Errorf("serve: submit: %w", err)
		}
		m, err := metamodel.UnmarshalModel(raw)
		if err != nil {
			return nil, fmt.Errorf("serve: submit: %w", err)
		}
		out, err := s.SubmitModel(tenantName, m)
		if err != nil {
			return nil, err
		}
		return map[string]any{"script": script.Format(out)}, nil
	case "tenants":
		names := s.Tenants()
		list := make([]any, len(names))
		for i, n := range names {
			list[i] = n
		}
		return map[string]any{"tenants": list}, nil
	case "obs":
		return map[string]any{"metrics": s.obs.Snapshot()}, nil
	case "export":
		exp, err := s.Export(tenantName)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"bundle":   exp.Bundle,
			"snapshot": string(exp.Snapshot),
			"ledger":   exp.Ledger.Attrs(),
		}, nil
	case "adopt":
		bundle, _ := args["bundle"].(string)
		snapshot, _ := args["snapshot"].(string)
		var ledger Accounting
		if lm, ok := args["ledger"].(map[string]any); ok {
			ledger = AccountingFromAttrs(lm)
		}
		return nil, s.Adopt(tenantName, ExportedTenant{
			Bundle: bundle, Snapshot: []byte(snapshot), Ledger: ledger,
		})
	case "redeliver":
		rd, rq, err := s.Redeliver(tenantName)
		if err != nil {
			return nil, err
		}
		return map[string]any{"redelivered": rd, "requeued": rq}, nil
	case "forget":
		return nil, s.Forget(tenantName)
	default:
		return nil, fmt.Errorf("serve: unknown control verb %q", verb)
	}
}
