package serve

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/runtime"
)

// TestEvictionRacesPostEvent hammers one tenant with concurrent posts
// while an evictor repeatedly parks it: every post must land as exactly
// one of admitted (Posted) or refused (Rejected), and the drained ledger
// must stay exact — park/rehydrate under fire loses nothing silently.
func TestEvictionRacesPostEvent(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if err := s.Create("acme", "cml"); err != nil {
		t.Fatal(err)
	}

	const posters = 4
	const perPoster = 250
	var attempted, errored int64
	stop := make(chan struct{})
	var evictor sync.WaitGroup
	evictor.Add(1)
	go func() {
		defer evictor.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// Park the tenant out from under the posters; "not
				// resident" just means a poster's rehydrate won the race.
				_ = s.Evict("acme")
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < posters; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perPoster; j++ {
				atomic.AddInt64(&attempted, 1)
				ev := broker.Event{Name: "telemetry", Attrs: map[string]any{"p": id, "n": j}}
				if err := s.PostEvent("acme", ev); err != nil {
					atomic.AddInt64(&errored, 1)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	evictor.Wait()

	// Drain for the final cut; the tenant may be parked already.
	_ = s.Evict("acme")
	a, err := s.Accounting("acme")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Exact() {
		t.Errorf("ledger not exact under eviction churn: %+v", a)
	}
	att, errs := atomic.LoadInt64(&attempted), atomic.LoadInt64(&errored)
	if a.Posted+a.Rejected != att {
		t.Errorf("posted %d + rejected %d != attempted %d (errored %d)",
			a.Posted, a.Rejected, att, errs)
	}
	if a.Posted != att-errs {
		t.Errorf("posted = %d, want attempted %d - errored %d", a.Posted, att, errs)
	}
}

// TestExportAdoptRoundTrip moves a tenant between two servers and pins the
// migration guarantees: state arrives diff-equal, the accounting ledger
// travels with it, and the source forgets the tenant entirely.
func TestExportAdoptRoundTrip(t *testing.T) {
	a := NewServer(Config{})
	defer a.Close()
	b := NewServer(Config{})
	defer b.Close()

	if err := a.Create("acme", "cml"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SubmitModel("acme", sessionModel(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.PostEvent("acme", broker.Event{Name: "telemetry", Attrs: map[string]any{"n": i}}); err != nil {
			t.Fatal(err)
		}
	}

	exp, err := a.Export("acme")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Bundle != "cml" || len(exp.Snapshot) == 0 {
		t.Fatalf("export package: bundle=%q snapshot=%d bytes", exp.Bundle, len(exp.Snapshot))
	}
	if !exp.Ledger.Exact() {
		t.Errorf("exported ledger not exact: %+v", exp.Ledger)
	}
	if exp.Ledger.Posted != 10 {
		t.Errorf("exported Posted = %d, want 10", exp.Ledger.Posted)
	}
	if _, err := a.Accounting("acme"); err == nil {
		t.Error("source still knows the exported tenant")
	}

	if err := b.Adopt("acme", exp); err != nil {
		t.Fatal(err)
	}
	// Adoption parks; the first touch rehydrates. Post more traffic on the
	// new home and check the carried ledger continues the stream.
	for i := 0; i < 5; i++ {
		if err := b.PostEvent("acme", broker.Event{Name: "telemetry", Attrs: map[string]any{"n": 100 + i}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Evict("acme"); err != nil { // drain for the exact cut
		t.Fatal(err)
	}
	got, err := b.Accounting("acme")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exact() {
		t.Errorf("adopted ledger not exact: %+v", got)
	}
	if got.Posted != 15 {
		t.Errorf("adopted Posted = %d, want 15 (10 carried + 5 local)", got.Posted)
	}

	// The state round-trips diff-equal: the snapshot parked on the target
	// after its own quiesce is equivalent to the exported one, modulo the
	// new traffic — so compare a pure park/adopt with no extra posts.
	exp2, err := b.Export("acme")
	if err != nil {
		t.Fatal(err)
	}
	c := NewServer(Config{})
	defer c.Close()
	if err := c.Adopt("acme", exp2); err != nil {
		t.Fatal(err)
	}
	snapC, err := c.Snapshot("acme")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := runtime.SnapshotsEquivalent(exp2.Snapshot, snapC)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("adopted snapshot differs from the exported one")
	}
}

// TestAdoptRefusesDuplicatesAndForget: adoption cannot shadow an existing
// tenant, and Forget retires a replica without exporting its numbers.
func TestAdoptRefusesDuplicatesAndForget(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if err := s.Create("acme", "cml"); err != nil {
		t.Fatal(err)
	}
	exp := ExportedTenant{Bundle: "cml"}
	if err := s.Adopt("acme", exp); err == nil {
		t.Error("adopt over a resident tenant must fail")
	}
	if err := s.Adopt("", exp); err == nil {
		t.Error("adopt with empty name must fail")
	}
	if err := s.Adopt("x", ExportedTenant{}); err == nil {
		t.Error("adopt with empty bundle must fail")
	}
	if err := s.Forget("acme"); err != nil {
		t.Fatal(err)
	}
	if err := s.Forget("acme"); err == nil {
		t.Error("double forget must fail")
	}
	if _, err := s.Accounting("acme"); err == nil {
		t.Error("forgotten tenant still accounted")
	}
}

// TestRedeliverEmptyDLQ: redelivery on a healthy tenant is a no-op, and it
// rehydrates a parked tenant on the way.
func TestRedeliverEmptyDLQ(t *testing.T) {
	s := NewServer(Config{})
	defer s.Close()
	if err := s.Create("acme", "cml"); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("acme"); err != nil {
		t.Fatal(err)
	}
	rd, rq, err := s.Redeliver("acme")
	if err != nil {
		t.Fatal(err)
	}
	if rd != 0 || rq != 0 {
		t.Errorf("redeliver on empty DLQ: %d/%d", rd, rq)
	}
	if s.Resident() != 1 {
		t.Error("redeliver did not rehydrate the parked tenant")
	}
}

// TestLedgerAttrsRoundTrip: the wire flattening is lossless for the
// counters that matter.
func TestLedgerAttrsRoundTrip(t *testing.T) {
	a := Accounting{Bundle: "cml", Posted: 7, Delivered: 4, Failures: 1,
		DeadLettered: 1, Dropped: 1, Rejected: 3}
	got := AccountingFromAttrs(a.Attrs())
	if !reflect.DeepEqual(a, got) {
		t.Errorf("round trip: %+v != %+v", got, a)
	}
	// Wire maps arrive with float64 numbers; simulate a JSON hop.
	m := map[string]any{}
	for k, v := range a.Attrs() {
		if n, ok := v.(int64); ok {
			m[k] = float64(n)
		} else {
			m[k] = v
		}
	}
	if got := AccountingFromAttrs(m); !reflect.DeepEqual(a, got) {
		t.Errorf("float64 round trip: %+v != %+v", got, a)
	}
}

// TestMigrationOverWire drives export/adopt through the remote control
// verbs — the exact frames cluster migration rides on.
func TestMigrationOverWire(t *testing.T) {
	a := NewServer(Config{})
	defer a.Close()
	b := NewServer(Config{})
	defer b.Close()
	srvA, err := remote.NewRouterServer(a, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := remote.NewRouterServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	ca, err := remote.Dial(srvA.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := remote.Dial(srvB.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	if _, err := ca.Control("create", "acme", map[string]any{"bundle": "cml"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ca.Session("acme").PostEvent(broker.Event{Name: "telemetry", Attrs: map[string]any{"n": i}}); err != nil {
			t.Fatal(err)
		}
	}
	pack, err := ca.Control("export", "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Control("adopt", "acme", pack); err != nil {
		t.Fatal(err)
	}
	st, err := cb.Control("stat", "acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st["resident"] != false {
		t.Errorf("adopted tenant stat: %v", st)
	}
	if got := fmt.Sprint(st["posted"]); got != "3" {
		t.Errorf("carried posted over the wire = %v", st["posted"])
	}
	if _, err := ca.Control("stat", "acme", nil); err == nil {
		t.Error("source still serves the migrated tenant")
	}
}
