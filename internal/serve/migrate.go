package serve

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/obs"
)

// ExportedTenant is everything a peer needs to adopt a tenant: which
// bundle rebuilds it, the quiesced checkpoint of its state (DLQ included),
// and the exact accounting ledger it accumulated so far. It is the unit of
// live migration and of failover replication in internal/cluster.
type ExportedTenant struct {
	Bundle   string
	Snapshot []byte
	Ledger   Accounting
}

// Export quiesces a tenant and removes it from this server, returning the
// package a peer adopts. The returned ledger folds in anything the tenant
// carried from previous homes, so ledgers never double-count across a
// chain of migrations. A parked tenant exports its parked checkpoint
// as-is (it is already a quiesced cut).
func (s *Server) Export(name string) (ExportedTenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ExportedTenant{}, fmt.Errorf("serve: server closed")
	}
	var (
		bundle string
		snap   []byte
	)
	if t, ok := s.tenants[name]; ok {
		var err error
		snap, err = t.inst.Platform.Quiesce()
		if err != nil {
			return ExportedTenant{}, fmt.Errorf("serve: export %s: %w", name, err)
		}
		bundle = t.bundle
	} else if p, ok := s.parked[name]; ok {
		bundle, snap = p.bundle, p.snapshot
	} else {
		return ExportedTenant{}, fmt.Errorf("serve: %w %q", ErrNoTenant, name)
	}
	ledger, err := s.accountingLocked(name)
	if err != nil {
		return ExportedTenant{}, err
	}
	delete(s.tenants, name)
	delete(s.parked, name)
	delete(s.carried, name)
	s.gResident.Set(int64(len(s.tenants)))
	s.gParked.Set(int64(len(s.parked)))
	return ExportedTenant{Bundle: bundle, Snapshot: snap, Ledger: ledger}, nil
}

// Adopt installs an exported tenant on this server. The checkpoint is
// parked, not restored — the first frame naming the tenant rehydrates it
// through domains.Restore, so adoption is cheap and mass failover does not
// stampede the target. The carried ledger is recorded and folded into the
// tenant's Accounting from now on.
func (s *Server) Adopt(name string, exp ExportedTenant) error {
	if name == "" {
		return fmt.Errorf("serve: tenant name must not be empty")
	}
	if exp.Bundle == "" {
		return fmt.Errorf("serve: adopt %s: bundle must not be empty", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: server closed")
	}
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("serve: tenant %q exists", name)
	}
	if _, ok := s.parked[name]; ok {
		return fmt.Errorf("serve: tenant %q exists (parked)", name)
	}
	s.parked[name] = &parked{bundle: exp.Bundle, snapshot: exp.Snapshot}
	s.carried[name] = exp.Ledger
	s.gParked.Set(int64(len(s.parked)))
	return nil
}

// Replica returns the tenant's adoption package without removing it. A
// resident tenant is evicted first — a quiesced, exact cut, transparently
// rehydrated on its next touch — so the replica's snapshot and ledger are
// mutually consistent. Cluster nodes push replicas to their failover
// successor so a crashed node's tenants restart from the last replica
// instead of from nothing.
func (s *Server) Replica(name string) (ExportedTenant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ExportedTenant{}, fmt.Errorf("serve: server closed")
	}
	if _, ok := s.tenants[name]; ok {
		if err := s.evictLocked(name); err != nil {
			return ExportedTenant{}, fmt.Errorf("serve: replica %s: %w", name, err)
		}
	}
	p, ok := s.parked[name]
	if !ok {
		return ExportedTenant{}, fmt.Errorf("serve: %w %q", ErrNoTenant, name)
	}
	ledger, err := s.accountingLocked(name)
	if err != nil {
		return ExportedTenant{}, err
	}
	snap := make([]byte, len(p.snapshot))
	copy(snap, p.snapshot)
	return ExportedTenant{Bundle: p.bundle, Snapshot: snap, Ledger: ledger}, nil
}

// Forget drops a tenant without exporting it: a resident platform is
// stopped (drained, exact accounting) and discarded, a parked checkpoint
// deleted. The cluster uses it to retire a stale replica once the
// authoritative copy has moved on — the replica's numbers are a copy, not
// a second life, so they must not survive into any ledger.
func (s *Server) Forget(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, live := s.tenants[name]
	_, sleeping := s.parked[name]
	if !live && !sleeping {
		return fmt.Errorf("serve: %w %q", ErrNoTenant, name)
	}
	if live {
		t.inst.Platform.Stop()
	}
	delete(s.tenants, name)
	delete(s.parked, name)
	delete(s.carried, name)
	s.gResident.Set(int64(len(s.tenants)))
	s.gParked.Set(int64(len(s.parked)))
	return nil
}

// Redeliver replays the tenant's dead-letter queue synchronously into its
// Broker layer, rehydrating the tenant if it was parked. Failover uses it
// after adoption: the DLQ rode along in the checkpoint, so redelivery on
// the new home picks up exactly where the dead node left off.
func (s *Server) Redeliver(name string) (redelivered, requeued int, err error) {
	t, err := s.resident(name)
	if err != nil {
		return 0, 0, err
	}
	rd, rq := t.inst.Platform.Redeliver()
	return rd, rq, nil
}

// Attrs flattens the ledger for the wire (control-frame attribute maps).
func (a Accounting) Attrs() map[string]any {
	return map[string]any{
		"bundle":       a.Bundle,
		"posted":       a.Posted,
		"delivered":    a.Delivered,
		"failures":     a.Failures,
		"deadlettered": a.DeadLettered,
		"dropped":      a.Dropped,
		"rejected":     a.Rejected,
	}
}

// AccountingFromAttrs rebuilds a ledger from a wire attribute map (JSON
// numbers arrive as float64).
func AccountingFromAttrs(m map[string]any) Accounting {
	num := func(k string) int64 {
		switch v := m[k].(type) {
		case float64:
			return int64(v)
		case int64:
			return v
		case int:
			return int64(v)
		default:
			return 0
		}
	}
	b, _ := m["bundle"].(string)
	return Accounting{
		Bundle:       b,
		Posted:       num("posted"),
		Delivered:    num("delivered"),
		Failures:     num("failures"),
		DeadLettered: num("deadlettered"),
		Dropped:      num("dropped"),
		Rejected:     num("rejected"),
	}
}

// accountingLocked is Accounting with s.mu already held.
func (s *Server) accountingLocked(name string) (Accounting, error) {
	var (
		to     *obs.Obs
		bundle string
		live   bool
	)
	if t, ok := s.tenants[name]; ok {
		to, bundle, live = t.obs, t.bundle, true
	} else if p, ok := s.parked[name]; ok {
		to, bundle = p.obs, p.bundle
	} else {
		return Accounting{}, fmt.Errorf("serve: %w %q", ErrNoTenant, name)
	}
	a := Accounting{Bundle: bundle, Resident: live}
	if to != nil {
		m := to.MetricsOf()
		a.Posted = m.CounterValue(obs.MEventsPosted)
		a.Delivered = m.CounterValue(obs.MEventsDelivered)
		a.Failures = m.CounterValue(obs.MDeliverFailures)
		a.DeadLettered = m.CounterValue(obs.MEventsDeadLettered)
		a.Dropped = m.CounterValue(obs.MEventsDropped)
		a.Rejected = m.CounterValue(obs.MEventsRejected)
	}
	if c, ok := s.carried[name]; ok {
		a = a.Add(c)
	}
	return a, nil
}
