// Package registry implements the Controller's procedure repository (paper
// §V-B). A Procedure carries the metadata the intent-model generator
// operates on — its classifying DSC, DSC-described dependencies, and QoS
// attributes — along with the execution unit that embodies it.
package registry

import (
	"fmt"
	"sort"

	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
)

// Procedure is one repository entry.
type Procedure struct {
	// ID is the unique procedure identifier.
	ID string
	// Name is the human-readable label.
	Name string
	// Domain names the owning application domain.
	Domain string
	// ClassifiedBy is the single DSC that classifies the procedure (the
	// paper constrains a procedure to exactly one classifying DSC).
	ClassifiedBy string
	// Dependencies lists the DSCs of the operations this procedure calls.
	Dependencies []string
	// Cost is the abstract execution cost used by cost-minimising
	// selection policies (virtual milliseconds per activation).
	Cost float64
	// Reliability is a [0,1] QoS attribute.
	Reliability float64
	// Unit is the executable body run by the stack machine.
	Unit *eu.Unit
	// Tags carries free-form metadata consulted by selection policies.
	Tags map[string]string
}

// Tag returns a metadata tag ("" when absent).
func (p *Procedure) Tag(key string) string { return p.Tags[key] }

// Repository is a validated procedure store indexed for DSC matching.
type Repository struct {
	taxonomy *dsc.Taxonomy
	procs    map[string]*Procedure
	order    []string
}

// NewRepository creates a repository bound to a classifier taxonomy.
func NewRepository(taxonomy *dsc.Taxonomy) *Repository {
	return &Repository{
		taxonomy: taxonomy,
		procs:    make(map[string]*Procedure),
	}
}

// Taxonomy returns the classifier taxonomy the repository is bound to.
func (r *Repository) Taxonomy() *dsc.Taxonomy { return r.taxonomy }

// Add registers a procedure after checking its classifier and dependencies
// resolve to operation classifiers in the taxonomy.
func (r *Repository) Add(p *Procedure) error {
	if p.ID == "" {
		return fmt.Errorf("procedure with empty ID")
	}
	if _, ok := r.procs[p.ID]; ok {
		return fmt.Errorf("duplicate procedure %q", p.ID)
	}
	cls := r.taxonomy.Get(p.ClassifiedBy)
	if cls == nil {
		return fmt.Errorf("procedure %s: unknown classifier %q", p.ID, p.ClassifiedBy)
	}
	if cls.Category != dsc.Operation {
		return fmt.Errorf("procedure %s: classifier %q is a %s classifier, want operation",
			p.ID, p.ClassifiedBy, cls.Category)
	}
	for _, dep := range p.Dependencies {
		d := r.taxonomy.Get(dep)
		if d == nil {
			return fmt.Errorf("procedure %s: unknown dependency %q", p.ID, dep)
		}
		if d.Category != dsc.Operation {
			return fmt.Errorf("procedure %s: dependency %q is a %s classifier, want operation",
				p.ID, dep, d.Category)
		}
	}
	if p.Reliability < 0 || p.Reliability > 1 {
		return fmt.Errorf("procedure %s: reliability %v out of [0,1]", p.ID, p.Reliability)
	}
	r.procs[p.ID] = p
	r.order = append(r.order, p.ID)
	return nil
}

// MustAdd is Add that panics on error, for static DSK construction.
func (r *Repository) MustAdd(p *Procedure) *Procedure {
	if err := r.Add(p); err != nil {
		panic(err)
	}
	return p
}

// Get returns the procedure with the given ID, or nil.
func (r *Repository) Get(id string) *Procedure { return r.procs[id] }

// Remove deletes a procedure. Removing an absent ID is an error.
func (r *Repository) Remove(id string) error {
	if _, ok := r.procs[id]; !ok {
		return fmt.Errorf("procedure %q not found", id)
	}
	delete(r.procs, id)
	for i, pid := range r.order {
		if pid == id {
			r.order = append(r.order[:i:i], r.order[i+1:]...)
			break
		}
	}
	return nil
}

// Len returns the number of procedures.
func (r *Repository) Len() int { return len(r.procs) }

// IDs returns all procedure IDs in insertion order.
func (r *Repository) IDs() []string { return append([]string(nil), r.order...) }

// CandidatesFor returns the procedures whose classifying DSC satisfies the
// required DSC (exact match or specialisation), sorted by ID for
// determinism.
func (r *Repository) CandidatesFor(required string) []*Procedure {
	var out []*Procedure
	for _, id := range r.order {
		p := r.procs[id]
		if r.taxonomy.Satisfies(p.ClassifiedBy, required) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByDomain returns the procedures belonging to a domain, ordered by ID.
func (r *Repository) ByDomain(domain string) []*Procedure {
	var out []*Procedure
	for _, id := range r.order {
		if p := r.procs[id]; p.Domain == domain {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
