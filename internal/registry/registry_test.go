package registry

import (
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
)

func taxonomy(t *testing.T) *dsc.Taxonomy {
	t.Helper()
	tx := dsc.NewTaxonomy()
	for _, id := range []string{"op.a", "op.b", "op.c"} {
		tx.MustAdd(&dsc.DSC{ID: id, Domain: "d", Category: dsc.Operation})
	}
	tx.MustAdd(&dsc.DSC{ID: "op.a.fast", Domain: "d", Category: dsc.Operation, Parent: "op.a"})
	tx.MustAdd(&dsc.DSC{ID: "data.x", Domain: "d", Category: dsc.Data})
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	return tx
}

func proc(id, classifier string, deps ...string) *Procedure {
	return &Procedure{
		ID:           id,
		Name:         id,
		Domain:       "d",
		ClassifiedBy: classifier,
		Dependencies: deps,
		Reliability:  0.99,
		Unit:         eu.NewUnit(id),
	}
}

func TestAddAndLookup(t *testing.T) {
	r := NewRepository(taxonomy(t))
	r.MustAdd(proc("p1", "op.a"))
	r.MustAdd(proc("p2", "op.b", "op.a"))
	if r.Len() != 2 {
		t.Fatal("Len")
	}
	if r.Get("p1") == nil || r.Get("ghost") != nil {
		t.Fatal("Get")
	}
	if got := r.IDs(); len(got) != 2 || got[0] != "p1" {
		t.Fatalf("IDs: %v", got)
	}
	if r.Taxonomy() == nil {
		t.Fatal("Taxonomy accessor")
	}
}

func TestAddErrors(t *testing.T) {
	r := NewRepository(taxonomy(t))
	tests := []struct {
		name string
		p    *Procedure
		want string
	}{
		{"empty id", &Procedure{}, "empty ID"},
		{"unknown classifier", proc("p", "ghost"), "unknown classifier"},
		{"data classifier", proc("p", "data.x"), "want operation"},
		{"unknown dependency", proc("p", "op.a", "ghost"), "unknown dependency"},
		{"data dependency", proc("p", "op.a", "data.x"), "want operation"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := r.Add(tt.p)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("want %q, got %v", tt.want, err)
			}
		})
	}
	r.MustAdd(proc("dup", "op.a"))
	if err := r.Add(proc("dup", "op.a")); err == nil {
		t.Error("duplicate must fail")
	}
	bad := proc("badrel", "op.a")
	bad.Reliability = 1.5
	if err := r.Add(bad); err == nil || !strings.Contains(err.Error(), "reliability") {
		t.Errorf("reliability bound: %v", err)
	}
}

func TestRemove(t *testing.T) {
	r := NewRepository(taxonomy(t))
	r.MustAdd(proc("p1", "op.a"))
	if err := r.Remove("p1"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || len(r.IDs()) != 0 {
		t.Fatal("remove must drop from index")
	}
	if err := r.Remove("p1"); err == nil {
		t.Fatal("double remove must fail")
	}
}

func TestCandidatesForUsesSubsumption(t *testing.T) {
	r := NewRepository(taxonomy(t))
	r.MustAdd(proc("exact", "op.a"))
	r.MustAdd(proc("special", "op.a.fast"))
	r.MustAdd(proc("other", "op.b"))
	got := r.CandidatesFor("op.a")
	if len(got) != 2 {
		t.Fatalf("candidates: %v", got)
	}
	if got[0].ID != "exact" || got[1].ID != "special" {
		t.Errorf("sorted order: %v, %v", got[0].ID, got[1].ID)
	}
	// The narrower requirement excludes the broader provider.
	got = r.CandidatesFor("op.a.fast")
	if len(got) != 1 || got[0].ID != "special" {
		t.Fatalf("narrow candidates: %v", got)
	}
	if len(r.CandidatesFor("op.c")) != 0 {
		t.Fatal("no candidates expected")
	}
}

func TestByDomainAndTags(t *testing.T) {
	r := NewRepository(taxonomy(t))
	p := proc("p1", "op.a")
	p.Tags = map[string]string{"transport": "udp"}
	r.MustAdd(p)
	other := proc("p2", "op.b")
	other.Domain = "elsewhere"
	r.MustAdd(other)
	if got := r.ByDomain("d"); len(got) != 1 || got[0].ID != "p1" {
		t.Fatalf("ByDomain: %v", got)
	}
	if p.Tag("transport") != "udp" || p.Tag("ghost") != "" {
		t.Fatal("Tag")
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAdd should panic")
		}
	}()
	NewRepository(taxonomy(t)).MustAdd(&Procedure{})
}
