package api

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/serve"
)

// Problem is the structured error document every non-2xx API response
// carries (application/problem+json). For 422 responses the Problems
// slice is exactly the validator's problem list — byte-identical to what
// metamodel.Validate reports for the same candidate model, so clients
// and the conformance battery can compare without parsing prose.
type Problem struct {
	Title    string   `json:"title"`
	Status   int      `json:"status"`
	Detail   string   `json:"detail,omitempty"`
	Problems []string `json:"problems,omitempty"`
}

func writeProblem(w http.ResponseWriter, status int, title, detail string, problems []string) {
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(Problem{Title: title, Status: status, Detail: detail, Problems: problems})
}

// serveProblem maps a serve.Server refusal to its HTTP status via the
// sentinel errors the server wraps, falling back to 500.
func serveProblem(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrNoTenant):
		writeProblem(w, http.StatusNotFound, "no such tenant", err.Error(), nil)
	case errors.Is(err, serve.ErrThrottled):
		writeProblem(w, http.StatusTooManyRequests, "over event rate quota", err.Error(), nil)
	case errors.Is(err, serve.ErrQueueFull):
		writeProblem(w, http.StatusServiceUnavailable, "event queue full", err.Error(), nil)
	case errors.Is(err, serve.ErrTenantExists):
		writeProblem(w, http.StatusConflict, "tenant exists", err.Error(), nil)
	default:
		writeProblem(w, http.StatusInternalServerError, "internal error", err.Error(), nil)
	}
}

// submitProblem maps a SubmitModel refusal: a validation failure becomes
// 422 carrying the validator's exact problem list; any other refusal
// (LTS has no transition, dispatch failure) is a 409 conflict.
func submitProblem(w http.ResponseWriter, err error) {
	var ve *metamodel.ValidationError
	if errors.As(err, &ve) {
		writeProblem(w, http.StatusUnprocessableEntity, "model does not conform", err.Error(), ve.Problems)
		return
	}
	if errors.Is(err, serve.ErrNoTenant) {
		serveProblem(w, err)
		return
	}
	writeProblem(w, http.StatusConflict, "write refused", err.Error(), nil)
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
