package api

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/cluster"
	"github.com/mddsm/mddsm/internal/remote"
	"github.com/mddsm/mddsm/internal/serve"
)

// lateRouter lets the wire server start before the cluster node exists;
// heartbeats need every peer's bound address up front.
type lateRouter struct{ n *cluster.Node }

func (r *lateRouter) Route(tenant string) (remote.Endpoint, error) {
	if r.n == nil {
		return nil, fmt.Errorf("node not ready")
	}
	return r.n.Route(tenant)
}

func (r *lateRouter) Control(verb, tenant string, args map[string]any) (map[string]any, error) {
	if r.n == nil {
		return nil, fmt.Errorf("node not ready")
	}
	return r.n.Control(verb, tenant, args)
}

type clusterMember struct {
	id   string
	srv  *serve.Server
	node *cluster.Node
	wire *remote.Server
	api  *Server
	ts   *httptest.Server
}

// startAPICluster brings up n serve nodes joined as one cluster, each
// with its own HTTP front end, all sharing one placement-redirect map.
func startAPICluster(t *testing.T, n int) []*clusterMember {
	t.Helper()
	members := make([]*clusterMember, n)
	routers := make([]*lateRouter, n)
	peers := make([]cluster.Peer, n)
	for i := range members {
		routers[i] = &lateRouter{}
		wire, err := remote.NewRouterServer(routers[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i)
		peers[i] = cluster.Peer{ID: id, Addr: wire.Addr()}
		members[i] = &clusterMember{id: id, wire: wire}
	}
	peerHTTP := make(map[string]string) // shared; filled once listeners exist
	for i, m := range members {
		m.srv = serve.NewServer(serve.Config{MaxResident: 8})
		node, err := cluster.New(m.srv, cluster.Config{
			NodeID:            m.id,
			Peers:             peers,
			HeartbeatInterval: 20 * time.Millisecond,
			Seed:              42 + int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		m.node = node
		routers[i].n = node
		m.api, err = New(Config{Serve: m.srv, Cluster: node, PeerHTTP: peerHTTP})
		if err != nil {
			t.Fatal(err)
		}
		m.ts = httptest.NewServer(m.api)
		peerHTTP[m.id] = m.ts.URL
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.api.Close()
			m.ts.Close()
			m.wire.Close()
			m.node.Close()
			m.srv.Close()
		}
	})
	return members
}

// tenantOwnedBy probes candidate names until placement puts one on the
// wanted member.
func tenantOwnedBy(t *testing.T, node *cluster.Node, owner string) string {
	t.Helper()
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("ct%d", i)
		if node.Owner(name) == owner {
			return name
		}
	}
	t.Fatalf("no candidate tenant hashed onto %s", owner)
	return ""
}

// TestHTTPClusterRedirectE2E is the acceptance demo against a two-node
// cluster: create a tenant over HTTP, PATCH an object, observe the delta
// on /watch, read the model back conformant, and scrape non-empty
// /metrics — with the create deliberately sent to the NON-owner node so
// one request in the flow is served via a 307 placement redirect.
func TestHTTPClusterRedirectE2E(t *testing.T) {
	members := startAPICluster(t, 2)
	n0, n1 := members[0], members[1]

	// Both nodes agree on placement for a tenant owned by n1.
	tenant := tenantOwnedBy(t, n0.node, n1.id)
	if got := n1.node.Owner(tenant); got != n1.id {
		t.Fatalf("placement disagreement: n1 says %s owns %q", got, tenant)
	}
	base := "/tenants/" + tenant

	// Step 1: dial the WRONG node. The raw response must be a 307 whose
	// Location points at the owner, preserving the request URI.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	req, err := http.NewRequest("POST", n0.ts.URL+base, strings.NewReader(`{"bundle":"cml"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner answered %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != n1.ts.URL+base {
		t.Fatalf("redirect Location = %q, want %q", loc, n1.ts.URL+base)
	}

	// Step 2: the same create through a normal client follows the
	// redirect and lands on the owner.
	e0 := &env{t: t, srv: n0.srv, api: n0.api, ts: n0.ts}
	e1 := &env{t: t, srv: n1.srv, api: n1.api, ts: n1.ts}
	code, body := e0.do("POST", base, map[string]any{"bundle": "cml"})
	if code != http.StatusCreated {
		t.Fatalf("redirected create: %d %s", code, body)
	}
	if _, _, err := n1.srv.Model(tenant); err != nil {
		t.Fatalf("tenant did not land on its owner: %v", err)
	}

	// Step 3: open /watch on the owner, then PUT + PATCH via the
	// non-owner (each bouncing through the redirect) and observe the
	// delta frame arrive on the stream.
	watchResp, err := n1.ts.Client().Get(n1.ts.URL + base + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer watchResp.Body.Close()
	sc := bufio.NewScanner(watchResp.Body)
	for sc.Scan() && sc.Text() != "" { // snapshot frame ends at the blank line
	}

	if code, body := e0.do("PUT", base+"/models/cml/objects/p0",
		objectDoc{Class: "Person", Attrs: map[string]any{"name": "alice"}}); code != http.StatusCreated {
		t.Fatalf("redirected PUT: %d %s", code, body)
	}
	if code, body := e0.do("PATCH", base+"/models/cml/objects/p0",
		objectDoc{Attrs: map[string]any{"role": "chair"}}); code != http.StatusOK {
		t.Fatalf("redirected PATCH: %d %s", code, body)
	}
	sawDelta := false
	done := time.After(5 * time.Second)
	frames := make(chan string, 16)
	go func() {
		for sc.Scan() {
			frames <- sc.Text()
		}
		close(frames)
	}()
scan:
	for {
		select {
		case line, ok := <-frames:
			if !ok {
				break scan
			}
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, "set-attr") &&
				strings.Contains(line, "chair") {
				sawDelta = true
				break scan
			}
		case <-done:
			break scan
		}
	}
	if !sawDelta {
		t.Fatal("the PATCH delta never arrived on the owner's /watch stream")
	}

	// Step 4: read back through the non-owner; the committed model must
	// conform and carry the patched attribute.
	code, body = e0.do("GET", base+"/models/cml/objects/p0", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"role": "chair"`) {
		t.Fatalf("redirected read-back: %d %s", code, body)
	}
	m, mm, err := n1.srv.Model(tenant)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(mm); err != nil {
		t.Fatalf("served model does not conform: %v", err)
	}

	// Step 5: both nodes expose non-empty metrics; the non-owner counted
	// its redirects, the owner counted the writes and its tenant label.
	code, page0 := e0.do("GET", "/metrics", nil)
	if code != http.StatusOK || len(page0) == 0 {
		t.Fatalf("n0 /metrics: %d (%d bytes)", code, len(page0))
	}
	if !strings.Contains(string(page0), "mddsm_api_redirects") ||
		strings.Contains(string(page0), "mddsm_api_redirects 0\n") {
		t.Fatalf("n0 counted no placement redirects:\n%s", page0)
	}
	code, page1 := e1.do("GET", "/metrics", nil)
	if code != http.StatusOK || !strings.Contains(string(page1), `tenant="`+tenant+`"`) {
		t.Fatalf("n1 /metrics lacks the tenant's labeled series: %d", code)
	}

	// Step 6: a tenant owned by the dialled node is served locally —
	// no redirect on the fast path.
	local := tenantOwnedBy(t, n0.node, n0.id)
	req, err = http.NewRequest("POST", n0.ts.URL+"/tenants/"+local, strings.NewReader(`{"bundle":"cml"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("locally-owned create answered %d, want 201 without redirect", resp.StatusCode)
	}
}
