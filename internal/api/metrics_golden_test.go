package api

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/serve"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestMetricsGoldenExposition pins the Prometheus text exposition
// byte-for-byte: name mangling, label escaping, cumulative buckets with
// the shared bound table, seconds-valued sums, the gauge _max twin
// family, sorted family order and the # TYPE grammar. If this golden
// changes, every dashboard scraping /metrics changes with it.
func TestMetricsGoldenExposition(t *testing.T) {
	server := obs.NewMetrics()
	server.Counter("api.requests").Add(3)
	server.Gauge("serve.resident").Set(2)
	server.Gauge("serve.resident").Set(1)
	h := server.Histogram("api.request.latency")
	h.Observe(5 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(800 * time.Millisecond)

	tenant := obs.NewMetrics()
	tenant.Counter("pump.deliver").Add(7)
	tenant.Gauge("broker.queue.depth").Set(4)

	p := newPromSet()
	p.addMetrics(server, nil)
	awkward := "te\"n\\ant\nx" // quote, backslash and newline all need escaping
	p.addMetrics(tenant, []string{`tenant="` + escapeLabel(awkward) + `"`})

	rec := httptest.NewRecorder()
	p.render(rec)
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	got := rec.Body.Bytes()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition format drifted from the golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|NaN)$`)

// TestMetricsEndpointLive scrapes a working stack and checks the whole
// page against the exposition grammar: families sorted and unique, every
// sample line well-formed, server metrics unlabeled and tenant metrics
// labeled.
func TestMetricsEndpointLive(t *testing.T) {
	e := newEnv(t, serve.Config{MaxResident: 4})
	e.createTenant("m0", "cml")
	if code, body := e.do("PUT", "/tenants/m0/models/cml/objects/p0",
		objectDoc{Class: "Person", Attrs: map[string]any{"name": "alice"}}); code != http.StatusCreated {
		t.Fatalf("seed write: %d %s", code, body)
	}

	code, body := e.do("GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	page := string(body)
	if !strings.Contains(page, "# TYPE mddsm_api_requests counter") {
		t.Error("missing the api request counter family")
	}
	if !strings.Contains(page, "# TYPE mddsm_api_writes counter") || !strings.Contains(page, "\nmddsm_api_writes 1\n") {
		t.Errorf("one accepted write should read back as mddsm_api_writes 1:\n%s", page)
	}
	if !strings.Contains(page, `tenant="m0"`) {
		t.Error("tenant metrics are not labeled per tenant")
	}

	var families []string
	current := ""
	for _, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam := strings.Fields(name)[0]
			families = append(families, fam)
			current = fam
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		if current == "" || !strings.HasPrefix(line, current) {
			t.Fatalf("sample %q outside its # TYPE family (current %q)", line, current)
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Error("families are not sorted")
	}
	for i := 1; i < len(families); i++ {
		if families[i] == families[i-1] {
			t.Errorf("duplicate family %q", families[i])
		}
	}
}
