package api

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/serve"
)

// TestHTTPRaceLifecycle hammers one API stack from four directions at
// once — REST writers, event posters, SSE watchers, and an eviction
// churner that keeps parking and rehydrating the very tenants being
// written — then settles the dust and demands exact accounting:
//
//   - every conformant write was accepted (the per-tenant write lock
//     plus rehydration must never lose or double-apply an edit);
//   - the final object count per tenant is exactly writers×objects;
//   - every watcher saw a snapshot and at least one delta;
//   - the stack tears down to the baseline goroutine count.
//
// Run it under -race; the CI http-smoke leg does.
func TestHTTPRaceLifecycle(t *testing.T) {
	const (
		tenants   = 4
		writers   = 4 // per tenant
		patches   = 6 // per writer after its create
		events    = 25
		churns    = 40
		maxLive   = 2 // < tenants, so residency churns constantly
		watchWait = 5 * time.Second
	)

	baseline := runtime.NumGoroutine()

	s := serve.NewServer(serve.Config{MaxResident: maxLive})
	a, err := New(Config{Serve: s})
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(a)
	e := &env{t: t, srv: s, api: a, ts: ts}

	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
		e.createTenant(names[i], "cml")
	}

	// SSE watchers: one per tenant, counting snapshot and delta frames.
	type watchStat struct {
		snapshots atomic.Int64
		deltas    atomic.Int64
	}
	stats := make([]*watchStat, tenants)
	watchCtx, stopWatch := context.WithCancel(context.Background())
	var watchWG sync.WaitGroup
	for i, name := range names {
		st := &watchStat{}
		stats[i] = st
		watchWG.Add(1)
		go func(name string, st *watchStat) {
			defer watchWG.Done()
			req, err := http.NewRequestWithContext(watchCtx, "GET", ts.URL+"/tenants/"+name+"/watch", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Errorf("watch %s: %v", name, err)
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "event: snapshot"):
					st.snapshots.Add(1)
				case strings.HasPrefix(line, "event: delta"):
					st.deltas.Add(1)
				}
			}
		}(name, st)
	}

	// Writers: each owns object w<k> on its tenant — one PUT, then
	// PATCH trains. Distinct ids per writer keep every write conformant,
	// so acceptance must be total.
	var wrote atomic.Int64
	var wg sync.WaitGroup
	for _, name := range names {
		for k := 0; k < writers; k++ {
			wg.Add(1)
			go func(name string, k int) {
				defer wg.Done()
				id := fmt.Sprintf("w%d", k)
				url := "/tenants/" + name + "/models/cml/objects/" + id
				code, body := e.do("PUT", url, map[string]any{
					"class": "Person", "attrs": map[string]any{"name": id},
				})
				if code != http.StatusCreated {
					t.Errorf("PUT %s/%s: %d %s", name, id, code, body)
					return
				}
				wrote.Add(1)
				for p := 0; p < patches; p++ {
					code, body := e.do("PATCH", url, map[string]any{
						"attrs": map[string]any{"role": fmt.Sprintf("r%d", p)},
					})
					if code != http.StatusOK {
						t.Errorf("PATCH %s/%s #%d: %d %s", name, id, p, code, body)
						return
					}
					wrote.Add(1)
				}
			}(name, k)
		}
	}

	// Event posters: telemetry through the same mux. A 503 is honest
	// backpressure — the tenant's queue filled while it was being
	// evicted or hammered — and the contract is that a retry lands, so
	// the poster retries until accepted and the accounting stays exact.
	var posted atomic.Int64
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				for attempt := 0; ; attempt++ {
					code, body := e.do("POST", "/tenants/"+name+"/events", map[string]any{
						"name": "telemetry", "attrs": map[string]any{"load": float64(i)},
					})
					if code == http.StatusAccepted {
						posted.Add(1)
						break
					}
					if code != http.StatusServiceUnavailable || attempt > 500 {
						t.Errorf("event %s #%d: %d %s", name, i, code, body)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(name)
	}

	// Churner: evict tenants round-robin while everything above runs.
	// Evicting a busy tenant is allowed to fail; the point is that the
	// next request transparently rehydrates whatever was parked.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churns; i++ {
			s.Evict(names[i%tenants])
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()

	// Exact accounting: all conformant writes and events were accepted.
	wantWrites := int64(tenants * writers * (1 + patches))
	if got := wrote.Load(); got != wantWrites {
		t.Errorf("accepted writes = %d, want %d", got, wantWrites)
	}
	if got := posted.Load(); got != int64(tenants*events) {
		t.Errorf("accepted events = %d, want %d", got, tenants*events)
	}
	// Exact state: each tenant holds exactly its writers' objects, and
	// every surviving model conforms.
	for _, name := range names {
		m, mm, err := s.Model(name)
		if err != nil {
			t.Fatalf("tenant %s lost after churn: %v", name, err)
		}
		if m.Len() != writers {
			t.Errorf("tenant %s: %d objects, want %d", name, m.Len(), writers)
		}
		if err := m.Validate(mm); err != nil {
			t.Errorf("tenant %s stopped conforming: %v", name, err)
		}
	}

	// Watchers must have seen the snapshot and live deltas despite the
	// churn — the stream survives evict/rehydrate cycles.
	deadline := time.Now().Add(watchWait)
	for i := range stats {
		for stats[i].deltas.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if stats[i].snapshots.Load() == 0 {
			t.Errorf("watcher %s never saw its snapshot frame", names[i])
		}
		if stats[i].deltas.Load() == 0 {
			t.Errorf("watcher %s never saw a delta frame", names[i])
		}
	}

	// Teardown: cancel watchers, close the stack, and require the
	// goroutine count to settle back to the baseline.
	stopWatch()
	watchWG.Wait()
	a.Close()
	ts.Close()
	s.Close()

	deadline = time.Now().Add(watchWait)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d alive, baseline %d\n%s", got, baseline, buf[:n])
	}
}
