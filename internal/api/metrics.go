package api

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/mddsm/mddsm/internal/obs"
)

// promFamily collects the rendered sample lines of one metric family;
// the exposition prints a single # TYPE header per family.
type promFamily struct {
	typ   string
	lines []string
}

type promSet struct {
	fams  map[string]*promFamily
	names []string
}

func newPromSet() *promSet { return &promSet{fams: make(map[string]*promFamily)} }

func (p *promSet) family(name, typ string) *promFamily {
	f, ok := p.fams[name]
	if !ok {
		f = &promFamily{typ: typ}
		p.fams[name] = f
		p.names = append(p.names, name)
	}
	return f
}

// promName mangles a dotted instrument name into the Prometheus
// namespace: "pump.deliver.latency" -> "mddsm_pump_deliver_latency".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("mddsm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func formatSeconds(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// addMetrics renders every instrument of one registry into the family
// set, tagged with the given label pairs (e.g. tenant="x").
func (p *promSet) addMetrics(m *obs.Metrics, labels []string) {
	lbl := renderLabels(labels)
	m.Each(
		func(name string, c *obs.Counter) {
			f := p.family(promName(name), "counter")
			f.lines = append(f.lines, fmt.Sprintf("%s%s %d", promName(name), lbl, c.Value()))
		},
		func(name string, g *obs.Gauge) {
			pn := promName(name)
			f := p.family(pn, "gauge")
			f.lines = append(f.lines, fmt.Sprintf("%s%s %d", pn, lbl, g.Value()))
			fm := p.family(pn+"_max", "gauge")
			fm.lines = append(fm.lines, fmt.Sprintf("%s_max%s %d", pn, lbl, g.Max()))
		},
		func(name string, h *obs.Histogram) {
			pn := promName(name)
			f := p.family(pn, "histogram")
			cum := int64(0)
			for i := 0; i < obs.HistBuckets; i++ {
				cum += h.Bucket(i)
				le := "+Inf"
				if sec, ok := obs.HistBoundSeconds(i); ok {
					le = formatSeconds(sec)
				}
				bl := append(append([]string(nil), labels...), `le="`+le+`"`)
				f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d", pn, renderLabels(bl), cum))
			}
			f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s", pn, lbl, formatSeconds(h.Sum().Seconds())))
			f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", pn, lbl, h.Count()))
		},
	)
}

func (p *promSet) render(w http.ResponseWriter) {
	sort.Strings(p.names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, name := range p.names {
		f := p.fams[name]
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ)
		for _, line := range f.lines {
			fmt.Fprintln(w, line)
		}
	}
}

// handleMetrics exposes every instrument of the server-wide bundle
// (unlabeled) and of each tenant's bundle (labeled tenant="name",
// resident and parked alike) in the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := newPromSet()
	p.addMetrics(s.obs.MetricsOf(), nil)
	s.serve.EachTenantObs(func(tenant string, o *obs.Obs, resident bool) {
		p.addMetrics(o.MetricsOf(), []string{`tenant="` + escapeLabel(tenant) + `"`})
	})
	p.render(w)
}
