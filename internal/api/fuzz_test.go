package api

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/serve"
)

// FuzzHTTPObjects throws arbitrary verbs, URL suffixes and JSON bodies
// at the object routes of a live tenant. The invariants: the server
// never panics, every structured refusal is a problem document whose
// status matches the response code, and the served model conforms to
// its metamodel after every request — a fuzzed write either commits a
// conformant model or changes nothing.
func FuzzHTTPObjects(f *testing.F) {
	s := serve.NewServer(serve.Config{MaxResident: 4})
	a, err := New(Config{Serve: s})
	if err != nil {
		s.Close()
		f.Fatal(err)
	}
	ts := httptest.NewServer(a)
	f.Cleanup(func() {
		a.Close()
		ts.Close()
		s.Close()
	})
	if err := s.Create("fz", "cml"); err != nil {
		f.Fatal(err)
	}

	f.Add("PUT", "p0", `{"class":"Person","attrs":{"name":"alice"}}`)
	f.Add("PUT", "p0", `{"class":"Person","attrs":{"name":"alice","role":"chair"}}`)
	f.Add("PATCH", "p0", `{"attrs":{"role":"speaker"}}`)
	f.Add("PATCH", "p0", `{"attrs":{"name":null}}`)
	f.Add("PUT", "s0", `{"class":"Session","attrs":{"topic":"fuzz"},"refs":{"participants":["p0"]}}`)
	f.Add("PUT", "x", `{"class":"NoSuchClass"}`)
	f.Add("PATCH", "p0", `{"attrs":{"bandwidth":"not a float"}}`)
	f.Add("PATCH", "p0", `{"refs":{"participants":["ghost"]}}`)
	f.Add("DELETE", "p0", ``)
	f.Add("GET", "p0", ``)
	f.Add("PUT", "p0", `{"id":"mismatch","class":"Person"}`)
	f.Add("PUT", "%2e%2e%2f%2e%2e", `{"class":"Person"}`)
	f.Add("PATCH", "p0", `not json at all`)
	f.Add("PUT", "p0", `{"class":"Person","attrs":{"name":{"nested":"object"}}}`)
	f.Add("POST", "../../events", `{"name":"telemetry"}`)

	client := ts.Client()
	f.Fuzz(func(t *testing.T, method, idSuffix, body string) {
		req, err := http.NewRequest(method, ts.URL+"/tenants/fz/models/cml/objects/"+idSuffix,
			strings.NewReader(body))
		if err != nil {
			t.Skip() // the fuzzer built an unsendable request, not a server bug
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Skip()
		}
		out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()

		if ct := resp.Header.Get("Content-Type"); ct == "application/problem+json" {
			var p Problem
			if err := json.Unmarshal(out, &p); err != nil {
				t.Fatalf("%s %q: problem response is not JSON: %v\n%s", method, idSuffix, err, out)
			}
			if p.Status != resp.StatusCode {
				t.Fatalf("%s %q: problem status %d != response code %d\n%s",
					method, idSuffix, p.Status, resp.StatusCode, out)
			}
		}
		if resp.StatusCode == http.StatusUnprocessableEntity {
			var p Problem
			if json.Unmarshal(out, &p) == nil && len(p.Problems) == 0 {
				t.Fatalf("%s %q: 422 without the validator's problems\n%s", method, idSuffix, out)
			}
		}

		// The standing invariant: whatever the fuzzer did, the served
		// model still conforms.
		m, mm, err := s.Model("fz")
		if err != nil {
			t.Fatalf("tenant lost after %s %q: %v", method, idSuffix, err)
		}
		if err := m.Validate(mm); err != nil {
			t.Fatalf("served model stopped conforming after %s %q %q: %v", method, idSuffix, body, err)
		}
	})
}

// TestFuzzSeedsReplay replays the committed corpus deterministically so
// the plain test run (no -fuzz flag) covers the same ground.
func TestFuzzSeedsReplay(t *testing.T) {
	e := newEnv(t, serve.Config{MaxResident: 4})
	e.createTenant("fz", "cml")
	seeds := []struct{ method, id, body string }{
		{"PUT", "p0", `{"class":"Person","attrs":{"name":"alice"}}`},
		{"PATCH", "p0", `{"attrs":{"role":"speaker"}}`},
		{"PUT", "x", `{"class":"NoSuchClass"}`},
		{"PATCH", "p0", `not json at all`},
		{"DELETE", "ghost", ``},
	}
	for _, sd := range seeds {
		req, err := http.NewRequest(sd.method, e.ts.URL+"/tenants/fz/models/cml/objects/"+sd.id,
			strings.NewReader(sd.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := e.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("%s %s: server error %d %s", sd.method, sd.id, resp.StatusCode, out)
		}
		if bytes.Contains(out, []byte("panic")) {
			t.Fatalf("%s %s: response smells like a panic: %s", sd.method, sd.id, out)
		}
	}
	m, mm, err := e.srv.Model("fz")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(mm); err != nil {
		t.Fatalf("served model stopped conforming: %v", err)
	}
}
