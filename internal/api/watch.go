package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/obs"
)

// watchBuffer is each SSE subscriber's delta queue. A consumer that
// falls this far behind is disconnected (counted as lagged) rather than
// allowed to stall the committing goroutine.
const watchBuffer = 64

type sseMsg struct {
	event string
	seq   uint64
	data  []byte
}

type watcher struct {
	ch chan sseMsg
}

// stream is one tenant's delta feed: the last committed model (the diff
// base and the snapshot new subscribers are primed with) plus the live
// subscribers. The stream outlives evict/rehydrate churn — parking a
// tenant pauses publishes, it does not tear down watchers.
type stream struct {
	seq  uint64
	last *metamodel.Model
	subs map[*watcher]struct{}
}

// hub fans committed models out to SSE watchers as JSON change lists.
type hub struct {
	mu      sync.Mutex
	closed  bool
	streams map[string]*stream
	count   int

	delivered, lagged *obs.Counter
	watchers          *obs.Gauge
}

func newHub(met *obs.Metrics) *hub {
	return &hub{
		streams:   make(map[string]*stream),
		delivered: met.Counter(obs.MAPIWatchDelivered),
		lagged:    met.Counter(obs.MAPIWatchLagged),
		watchers:  met.Gauge(obs.MAPIWatchers),
	}
}

func (h *hub) stream(tenant string) *stream {
	st, ok := h.streams[tenant]
	if !ok {
		st = &stream{subs: make(map[*watcher]struct{})}
		h.streams[tenant] = st
	}
	return st
}

type changeDoc struct {
	Op      string `json:"op"`
	Object  string `json:"object"`
	Class   string `json:"class,omitempty"`
	Feature string `json:"feature,omitempty"`
	Old     any    `json:"old,omitempty"`
	New     any    `json:"new,omitempty"`
	Target  string `json:"target,omitempty"`
}

func changeDocs(cl metamodel.ChangeList) []changeDoc {
	docs := make([]changeDoc, len(cl))
	for i, c := range cl {
		docs[i] = changeDoc{
			Op: c.Kind.String(), Object: c.ObjectID, Class: c.Class,
			Feature: c.Feature, Old: c.Old, New: c.New, Target: c.Target,
		}
	}
	return docs
}

// publish is the serve.Server model observer: diff the committed model
// against the last one seen for the tenant and broadcast the delta. The
// model is a caller-owned clone; the hub keeps it as the next diff base.
// A tenant's first publish diffs against the empty model, which is
// exactly the state a fresh platform starts from.
func (h *hub) publish(tenant string, m *metamodel.Model) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	st := h.stream(tenant)
	base := st.last
	if base == nil {
		base = metamodel.NewModel(m.MetamodelName)
	}
	changes := metamodel.Diff(base, m)
	st.last = m
	if changes.Empty() {
		return
	}
	st.seq++
	data, err := json.Marshal(map[string]any{"seq": st.seq, "changes": changeDocs(changes)})
	if err != nil {
		return
	}
	msg := sseMsg{event: "delta", seq: st.seq, data: data}
	for w := range st.subs {
		select {
		case w.ch <- msg:
			h.delivered.Inc()
		default:
			delete(st.subs, w)
			close(w.ch)
			h.count--
			h.watchers.Set(int64(h.count))
			h.lagged.Inc()
		}
	}
}

// subscribe registers a watcher and returns the snapshot frame priming
// it: the full current model plus the sequence number deltas continue
// from. cur seeds the diff base when the hub has not yet seen a commit
// for the tenant.
func (h *hub) subscribe(tenant string, cur *metamodel.Model) (*watcher, sseMsg, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, sseMsg{}, fmt.Errorf("api: server closed")
	}
	st := h.stream(tenant)
	if st.last == nil && cur != nil {
		st.last = cur
	}
	model := st.last
	if model == nil {
		model = metamodel.NewModel("")
	}
	raw, err := metamodel.MarshalModel(model)
	if err != nil {
		return nil, sseMsg{}, err
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, raw); err != nil {
		return nil, sseMsg{}, err
	}
	data, err := json.Marshal(map[string]any{"seq": st.seq, "model": json.RawMessage(compact.Bytes())})
	if err != nil {
		return nil, sseMsg{}, err
	}
	w := &watcher{ch: make(chan sseMsg, watchBuffer)}
	st.subs[w] = struct{}{}
	h.count++
	h.watchers.Set(int64(h.count))
	return w, sseMsg{event: "snapshot", seq: st.seq, data: data}, nil
}

func (h *hub) unsubscribe(tenant string, w *watcher) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[tenant]
	if !ok {
		return
	}
	if _, live := st.subs[w]; live {
		delete(st.subs, w)
		h.count--
		h.watchers.Set(int64(h.count))
	}
}

func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, st := range h.streams {
		for w := range st.subs {
			close(w.ch)
			delete(st.subs, w)
		}
	}
	h.count = 0
	h.watchers.Set(0)
}

func writeSSE(w io.Writer, msg sseMsg) error {
	_, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", msg.event, msg.seq, msg.data)
	return err
}

// handleWatch streams the tenant's model as Server-Sent Events: one
// "snapshot" event with the full document, then one "delta" event per
// committed change list, each carrying the validator-approved model
// difference as JSON. The stream ends when the client disconnects, the
// server closes, or the watcher lags past its buffer.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request, tenant string) {
	cur, _, err := s.serve.Model(tenant)
	if err != nil {
		serveProblem(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeProblem(w, http.StatusInternalServerError, "streaming unsupported",
			"response writer does not support flushing", nil)
		return
	}
	wt, snap, err := s.hub.subscribe(tenant, cur)
	if err != nil {
		writeProblem(w, http.StatusServiceUnavailable, "watch unavailable", err.Error(), nil)
		return
	}
	defer s.hub.unsubscribe(tenant, wt)
	hd := w.Header()
	hd.Set("Content-Type", "text/event-stream")
	hd.Set("Cache-Control", "no-cache")
	hd.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if writeSSE(w, snap) != nil {
		return
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case msg, open := <-wt.ch:
			if !open {
				fmt.Fprint(w, ": lagged, stream closed\n\n")
				fl.Flush()
				return
			}
			if writeSSE(w, msg) != nil {
				return
			}
			fl.Flush()
		}
	}
}
