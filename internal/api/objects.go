package api

import (
	"fmt"
	"net/http"

	"github.com/mddsm/mddsm/internal/metamodel"
)

// objectDoc is the wire form of one model object, the same shape the
// model JSON codec uses.
type objectDoc struct {
	ID    string              `json:"id"`
	Class string              `json:"class,omitempty"`
	Attrs map[string]any      `json:"attrs,omitempty"`
	Refs  map[string][]string `json:"refs,omitempty"`
}

func marshalObject(o *metamodel.Object) objectDoc {
	doc := objectDoc{ID: o.ID, Class: o.Class}
	if names := o.AttrNames(); len(names) > 0 {
		doc.Attrs = make(map[string]any, len(names))
		for _, n := range names {
			v, _ := o.Attr(n)
			doc.Attrs[n] = v
		}
	}
	if names := o.RefNames(); len(names) > 0 {
		doc.Refs = make(map[string][]string, len(names))
		for _, n := range names {
			doc.Refs[n] = o.Refs(n)
		}
	}
	return doc
}

// model resolves {tenant}/{model}, rehydrating a parked tenant, and
// rejects paths naming a model the tenant does not serve. The returned
// model is a caller-owned copy — handlers mutate it freely.
func (s *Server) model(w http.ResponseWriter, r *http.Request, tenant string) (*metamodel.Model, *metamodel.Metamodel, bool) {
	m, mm, err := s.serve.Model(tenant)
	if err != nil {
		serveProblem(w, err)
		return nil, nil, false
	}
	if name := r.PathValue("model"); name != mm.Name {
		writeProblem(w, http.StatusNotFound, "unknown model",
			fmt.Sprintf("tenant %q serves model %q, not %q", tenant, mm.Name, name), []string{mm.Name})
		return nil, nil, false
	}
	return m, mm, true
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request, tenant string) {
	m, _, ok := s.model(w, r, tenant)
	if !ok {
		return
	}
	data, err := metamodel.MarshalModel(m)
	if err != nil {
		writeProblem(w, http.StatusInternalServerError, "encode failed", err.Error(), nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleClasses renders the provisioning schema: every class of the
// tenant's DSML with its effective (inheritance-flattened) features and
// the collection URL the class is served under. This is the "API for
// free" contract — the routes are a function of the metamodel alone.
func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request, tenant string) {
	_, mm, ok := s.model(w, r, tenant)
	if !ok {
		return
	}
	type attrDoc struct {
		Name     string `json:"name"`
		Kind     string `json:"kind"`
		EnumType string `json:"enumType,omitempty"`
		Required bool   `json:"required,omitempty"`
		Default  any    `json:"default,omitempty"`
	}
	type refDoc struct {
		Name        string `json:"name"`
		Target      string `json:"target"`
		Containment bool   `json:"containment,omitempty"`
		Many        bool   `json:"many,omitempty"`
		Required    bool   `json:"required,omitempty"`
	}
	type classDoc struct {
		Name       string    `json:"name"`
		Abstract   bool      `json:"abstract,omitempty"`
		Super      string    `json:"super,omitempty"`
		Attributes []attrDoc `json:"attributes,omitempty"`
		References []refDoc  `json:"references,omitempty"`
		Collection string    `json:"collection"`
	}
	var classes []classDoc
	for _, name := range mm.ClassNames() {
		c := mm.Class(name)
		doc := classDoc{
			Name: name, Abstract: c.Abstract, Super: c.Super,
			Collection: "/tenants/" + tenant + "/models/" + mm.Name + "/classes/" + name + "/objects",
		}
		for _, a := range mm.AllAttributes(name) {
			doc.Attributes = append(doc.Attributes, attrDoc{
				Name: a.Name, Kind: a.Kind.String(), EnumType: a.EnumType,
				Required: a.Required, Default: a.Default,
			})
		}
		for _, ref := range mm.AllReferences(name) {
			doc.References = append(doc.References, refDoc{
				Name: ref.Name, Target: ref.Target, Containment: ref.Containment,
				Many: ref.Many, Required: ref.Required,
			})
		}
		classes = append(classes, doc)
	}
	writeJSON(w, http.StatusOK, map[string]any{"metamodel": mm.Name, "classes": classes})
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request, tenant string) {
	m, _, ok := s.model(w, r, tenant)
	if !ok {
		return
	}
	docs := make([]objectDoc, 0, m.Len())
	for _, o := range m.Objects() {
		docs = append(docs, marshalObject(o))
	}
	writeJSON(w, http.StatusOK, map[string]any{"objects": docs, "count": len(docs)})
}

func (s *Server) handleClassObjects(w http.ResponseWriter, r *http.Request, tenant string) {
	m, mm, ok := s.model(w, r, tenant)
	if !ok {
		return
	}
	class := r.PathValue("class")
	if mm.Class(class) == nil {
		writeProblem(w, http.StatusNotFound, "unknown class",
			fmt.Sprintf("metamodel %q has no class %q", mm.Name, class), mm.ClassNames())
		return
	}
	objs := m.ObjectsKindOf(mm, class)
	docs := make([]objectDoc, 0, len(objs))
	for _, o := range objs {
		docs = append(docs, marshalObject(o))
	}
	writeJSON(w, http.StatusOK, map[string]any{"class": class, "objects": docs, "count": len(docs)})
}

func (s *Server) handleGetObject(w http.ResponseWriter, r *http.Request, tenant string) {
	m, _, ok := s.model(w, r, tenant)
	if !ok {
		return
	}
	id := r.PathValue("id")
	o := m.Get(id)
	if o == nil {
		writeProblem(w, http.StatusNotFound, "no such object",
			fmt.Sprintf("model has no object %q", id), nil)
		return
	}
	writeJSON(w, http.StatusOK, marshalObject(o))
}

// mutate runs one REST write: read the committed model, let fn edit the
// copy, submit the candidate through the models@runtime loop (validate →
// diff → interpret → commit), then answer from the committed state. A
// validation refusal surfaces as 422 with the validator's problem list;
// fn returning false means it already wrote a problem response.
func (s *Server) mutate(w http.ResponseWriter, r *http.Request, tenant string,
	fn func(next *metamodel.Model, mm *metamodel.Metamodel) bool,
	respond func(committed *metamodel.Model)) {
	lk := s.writeLock(tenant)
	lk.Lock()
	defer lk.Unlock()
	next, mm, ok := s.model(w, r, tenant)
	if !ok {
		return
	}
	if !fn(next, mm) {
		return
	}
	if _, err := s.serve.SubmitModel(tenant, next); err != nil {
		s.mWritesRejected.Inc()
		submitProblem(w, err)
		return
	}
	s.mWrites.Inc()
	committed, _, err := s.serve.Model(tenant)
	if err != nil {
		serveProblem(w, err)
		return
	}
	respond(committed)
}

// applyPut edits next per PUT semantics: the object ends up with exactly
// the attributes and references of the document. Replacement edits in
// place so the synthesis layer sees minimal attribute-level deltas, not
// remove+add churn; changing the class is a true replacement. Returns
// whether the object was created, or a Problem describing the refusal.
func applyPut(next *metamodel.Model, mm *metamodel.Metamodel, id string, doc objectDoc) (bool, *Problem) {
	created := false
	o := next.Get(id)
	switch {
	case o == nil:
		if doc.Class == "" {
			return false, &Problem{Status: http.StatusBadRequest, Title: "missing class",
				Detail: "creating an object requires a class", Problems: mm.ClassNames()}
		}
		o = next.NewObject(id, doc.Class)
		created = true
	case doc.Class != "" && doc.Class != o.Class:
		next.Delete(id)
		o = next.NewObject(id, doc.Class)
	}
	for _, name := range o.AttrNames() {
		if _, keep := doc.Attrs[name]; !keep {
			o.UnsetAttr(name)
		}
	}
	for k, v := range doc.Attrs {
		o.SetAttr(k, v)
	}
	for _, name := range o.RefNames() {
		if _, keep := doc.Refs[name]; !keep {
			o.SetRef(name)
		}
	}
	for k, targets := range doc.Refs {
		o.SetRef(k, targets...)
	}
	return created, nil
}

// applyPatch edits next per PATCH semantics: attributes present are set,
// attributes bound to JSON null are unset, reference lists are replaced
// per name (null or [] clears). The object must exist and keep its class.
func applyPatch(next *metamodel.Model, id string, doc objectDoc) *Problem {
	o := next.Get(id)
	if o == nil {
		return &Problem{Status: http.StatusNotFound, Title: "no such object",
			Detail: fmt.Sprintf("model has no object %q; use PUT to create", id)}
	}
	if doc.Class != "" && doc.Class != o.Class {
		return &Problem{Status: http.StatusConflict, Title: "cannot reclassify",
			Detail: fmt.Sprintf("object %q is a %s; PATCH cannot change the class, use PUT", id, o.Class)}
	}
	for k, v := range doc.Attrs {
		if v == nil {
			o.UnsetAttr(k)
		} else {
			o.SetAttr(k, v)
		}
	}
	for k, targets := range doc.Refs {
		o.SetRef(k, targets...)
	}
	return nil
}

// applyDelete removes one object and strips references pointing at it
// (the editor idiom), so the delete fails validation only when the model
// genuinely cannot conform without the object — e.g. a required
// reference left unsatisfiable.
func applyDelete(next *metamodel.Model, id string) *Problem {
	if next.Get(id) == nil {
		return &Problem{Status: http.StatusNotFound, Title: "no such object",
			Detail: fmt.Sprintf("model has no object %q", id)}
	}
	next.Delete(id)
	for _, o := range next.Objects() {
		for _, ref := range o.RefNames() {
			o.RemoveRef(ref, id)
		}
	}
	return nil
}

func writeProblemDoc(w http.ResponseWriter, p *Problem) {
	writeProblem(w, p.Status, p.Title, p.Detail, p.Problems)
}

func (s *Server) handlePutObject(w http.ResponseWriter, r *http.Request, tenant string) {
	id := r.PathValue("id")
	var doc objectDoc
	if !decodeBody(w, r, &doc) {
		return
	}
	if doc.ID != "" && doc.ID != id {
		writeProblem(w, http.StatusBadRequest, "id mismatch",
			fmt.Sprintf("document id %q does not match URL id %q", doc.ID, id), nil)
		return
	}
	created := false
	s.mutate(w, r, tenant, func(next *metamodel.Model, mm *metamodel.Metamodel) bool {
		var p *Problem
		created, p = applyPut(next, mm, id, doc)
		if p != nil {
			writeProblemDoc(w, p)
			return false
		}
		return true
	}, func(committed *metamodel.Model) {
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, marshalObject(committed.Get(id)))
	})
}

func (s *Server) handlePatchObject(w http.ResponseWriter, r *http.Request, tenant string) {
	id := r.PathValue("id")
	var doc objectDoc
	if !decodeBody(w, r, &doc) {
		return
	}
	if doc.ID != "" && doc.ID != id {
		writeProblem(w, http.StatusBadRequest, "id mismatch",
			fmt.Sprintf("document id %q does not match URL id %q", doc.ID, id), nil)
		return
	}
	s.mutate(w, r, tenant, func(next *metamodel.Model, mm *metamodel.Metamodel) bool {
		if p := applyPatch(next, id, doc); p != nil {
			writeProblemDoc(w, p)
			return false
		}
		return true
	}, func(committed *metamodel.Model) {
		writeJSON(w, http.StatusOK, marshalObject(committed.Get(id)))
	})
}

func (s *Server) handleDeleteObject(w http.ResponseWriter, r *http.Request, tenant string) {
	id := r.PathValue("id")
	s.mutate(w, r, tenant, func(next *metamodel.Model, mm *metamodel.Metamodel) bool {
		if p := applyDelete(next, id); p != nil {
			writeProblemDoc(w, p)
			return false
		}
		return true
	}, func(*metamodel.Model) {
		w.WriteHeader(http.StatusNoContent)
	})
}
