package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/serve"
)

// The HTTP conformance battery. Every bundle — the four hand-built
// domains plus eight generated ones — gets a pair of twin tenants: twin
// A is driven purely over REST, twin B replays the same edits through
// serve.SubmitModel using the handlers' own apply functions. The
// battery asserts three things per write:
//
//  1. acceptance parity — HTTP accepts iff the direct submission does;
//  2. problem fidelity — a 422 body carries the compiled validator's
//     problem list byte-for-byte;
//  3. state parity — after the volley, the twins' platform snapshots
//     are equivalent, so the HTTP path added no semantics of its own.

// batteryClassCap bounds per-bundle volley size so the full battery
// stays fast even for the widest generated metamodels.
const batteryClassCap = 6

// twin drives one tenant pair through mirrored writes.
type twin struct {
	t        *testing.T
	e        *env
	a, b     string // tenant names: a over HTTP, b direct
	base     string // /tenants/{a}/models/{mm}
	mm       *metamodel.Metamodel
	accepted int
	rejected int
}

func newTwin(t *testing.T, e *env, i int, bundle string, seed *metamodel.Model) *twin {
	t.Helper()
	tw := &twin{t: t, e: e, a: fmt.Sprintf("a%02d", i), b: fmt.Sprintf("b%02d", i)}
	e.createTenant(tw.a, bundle)
	if err := e.srv.Create(tw.b, bundle); err != nil {
		t.Fatal(err)
	}
	_, mm, err := e.srv.Model(tw.a)
	if err != nil {
		t.Fatal(err)
	}
	tw.mm = mm
	tw.base = "/tenants/" + tw.a + "/models/" + mm.Name
	if seed != nil {
		for _, tenant := range []string{tw.a, tw.b} {
			if _, err := e.srv.SubmitModel(tenant, seed.Clone()); err != nil {
				t.Fatalf("seed %s: %v", tenant, err)
			}
		}
	}
	return tw
}

// write mirrors one object write onto both twins and checks parity.
// The HTTP verb runs against twin A; the same document runs through the
// handlers' apply functions and a direct SubmitModel on twin B.
func (tw *twin) write(method, id string, doc objectDoc) (int, []byte) {
	t := tw.t
	t.Helper()
	var body any
	if method != http.MethodDelete {
		body = doc
	}
	code, respBody := tw.e.do(method, tw.base+"/objects/"+id, body)

	next, mm, err := tw.e.srv.Model(tw.b)
	if err != nil {
		t.Fatal(err)
	}
	var prob *Problem
	switch method {
	case http.MethodPut:
		_, prob = applyPut(next, mm, id, doc)
	case http.MethodPatch:
		prob = applyPatch(next, id, doc)
	case http.MethodDelete:
		prob = applyDelete(next, id)
	default:
		t.Fatalf("unsupported battery verb %s", method)
	}
	if prob != nil {
		// The edit itself was refused before validation; HTTP must have
		// refused the same way and left both models untouched.
		if code != prob.Status {
			t.Fatalf("%s %s: HTTP %d but direct apply refused with %d (%s)\n%s",
				method, id, code, prob.Status, prob.Title, respBody)
		}
		tw.rejected++
		return code, respBody
	}
	_, submitErr := tw.e.srv.SubmitModel(tw.b, next)
	if accepted := code < 300; accepted != (submitErr == nil) {
		t.Fatalf("%s %s: acceptance divergence: HTTP %d vs direct submit err %v\n%s",
			method, id, code, submitErr, respBody)
	}
	if submitErr == nil {
		tw.accepted++
		return code, respBody
	}
	tw.rejected++
	var ve *metamodel.ValidationError
	if errors.As(submitErr, &ve) {
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("%s %s: validator refused but HTTP answered %d\n%s", method, id, code, respBody)
		}
		p := decodeProblem(t, respBody)
		wantJSON, err := json.Marshal(ve.Problems)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(p.Problems)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("%s %s: problem list diverged from the validator's\nhttp:      %s\nvalidator: %s",
				method, id, gotJSON, wantJSON)
		}
	}
	return code, respBody
}

// conformantDoc builds a valid document for one class: every attribute
// set to an in-kind value, every required reference aimed at an existing
// instance of its target (when one exists).
func (tw *twin) conformantDoc(class string, salt int) objectDoc {
	tw.t.Helper()
	doc := objectDoc{Class: class}
	attrs := tw.mm.AllAttributes(class)
	if len(attrs) > 0 {
		doc.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			doc.Attrs[a.Name] = conformantValue(tw.mm, a, salt)
		}
	}
	m, _, err := tw.e.srv.Model(tw.b)
	if err != nil {
		tw.t.Fatal(err)
	}
	for _, ref := range tw.mm.AllReferences(class) {
		if !ref.Required {
			continue
		}
		if targets := m.ObjectsKindOf(tw.mm, ref.Target); len(targets) > 0 {
			if doc.Refs == nil {
				doc.Refs = make(map[string][]string)
			}
			doc.Refs[ref.Name] = []string{targets[0].ID}
		}
	}
	return doc
}

// snapshotsMatch asserts the twins' platform snapshots are equivalent
// modulo generator statistics.
func (tw *twin) snapshotsMatch() {
	t := tw.t
	t.Helper()
	sa, err := tw.e.srv.Snapshot(tw.a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := tw.e.srv.Snapshot(tw.b)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := runtime.SnapshotsEquivalent(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("twin snapshots diverged after the battery:\nA(http):   %s\nB(direct): %s", sa, sb)
	}
}

func TestHTTPConformanceBattery(t *testing.T) {
	type entry struct {
		bundle string
		seed   *metamodel.Model
	}
	var entries []entry
	for _, bundle := range []string{"cml", "mgrid", "smartspace", "csense"} {
		entries = append(entries, entry{bundle: bundle})
	}
	for _, d := range batteryDomains(t) {
		entries = append(entries, entry{bundle: d.Name, seed: d.Initial()})
	}
	if len(entries) < 12 {
		t.Fatalf("battery covers %d bundles, want at least 12", len(entries))
	}
	e := newEnv(t, serve.Config{MaxResident: 2*len(entries) + 2})

	for i, ent := range entries {
		ent := ent
		i := i
		t.Run(ent.bundle, func(t *testing.T) {
			tw := newTwin(t, e, i, ent.bundle, ent.seed)
			tw.t = t
			classes := concreteClasses(tw.mm)
			if len(classes) > batteryClassCap {
				classes = classes[:batteryClassCap]
			}
			if len(classes) == 0 {
				t.Fatalf("bundle %s has no concrete classes", ent.bundle)
			}

			// Conformant PUT volley: one object per class, created from
			// scratch over HTTP and mirrored directly.
			ids := make(map[string]string, len(classes)) // id -> class
			for k, class := range classes {
				id := fmt.Sprintf("h%d", k)
				code, body := tw.write(http.MethodPut, id, tw.conformantDoc(class, k))
				if code == http.StatusCreated {
					ids[id] = class
				} else if code >= 300 {
					// A refusal here is legitimate domain behaviour — a
					// required reference with no target yet (422) or a
					// synthesis dispatch the domain's controllers reject
					// (409). Parity with the direct path was already
					// checked; anything else is a battery bug.
					p := decodeProblem(t, body)
					if p.Status != http.StatusUnprocessableEntity && p.Status != http.StatusConflict {
						t.Fatalf("PUT %s (%s): unexpected refusal %d %s", id, class, code, body)
					}
				}
			}
			if len(ids) == 0 {
				t.Fatalf("bundle %s accepted no object creations", ent.bundle)
			}

			// Conformant PATCH volley: flip one attribute per object.
			for id, class := range ids {
				attrs := tw.mm.AllAttributes(class)
				doc := objectDoc{}
				if len(attrs) > 0 {
					doc.Attrs = map[string]any{attrs[0].Name: conformantValue(tw.mm, attrs[0], 77)}
				}
				tw.write(http.MethodPatch, id, doc)
			}

			// Replacement PUT: same class, required features only, so the
			// optional attributes are unset and defaults re-apply.
			for id, class := range ids {
				doc := objectDoc{Class: class, Attrs: map[string]any{}}
				for _, a := range tw.mm.AllAttributes(class) {
					if a.Required {
						doc.Attrs[a.Name] = conformantValue(tw.mm, a, 5)
					}
				}
				full := tw.conformantDoc(class, 5)
				doc.Refs = full.Refs
				tw.write(http.MethodPut, id, doc)
				break // one replacement per bundle is enough
			}

			// Non-conformant volleys — each must be refused with the
			// validator's exact problem list on the HTTP side.
			tw.write(http.MethodPut, "bad-class", objectDoc{Class: "NoSuchClass"})
			var someID, someClass string
			for id, class := range ids {
				someID, someClass = id, class
				break
			}
			attrs := tw.mm.AllAttributes(someClass)
			if len(attrs) > 0 {
				tw.write(http.MethodPatch, someID,
					objectDoc{Attrs: map[string]any{attrs[0].Name: wrongTypedValue(attrs[0])}})
			}
			tw.write(http.MethodPatch, someID,
				objectDoc{Attrs: map[string]any{"no_such_attribute": 1.0}})
			tw.write(http.MethodPatch, someID,
				objectDoc{Refs: map[string][]string{"no_such_reference": {"ghost"}}})
			if refs := tw.mm.AllReferences(someClass); len(refs) > 0 {
				tw.write(http.MethodPatch, someID,
					objectDoc{Refs: map[string][]string{refs[0].Name: {"dangling-target"}}})
			}
			// Unsetting a required attribute without a default must refuse.
			for _, a := range attrs {
				if a.Required && a.Default == nil {
					tw.write(http.MethodPatch, someID,
						objectDoc{Attrs: map[string]any{a.Name: nil}})
					break
				}
			}

			// Lifecycle tail: delete one object (reference-stripping may
			// still refuse if a required ref becomes unsatisfiable — parity
			// is what matters), then a delete of a ghost id (404 on both).
			tw.write(http.MethodDelete, someID, objectDoc{})
			tw.write(http.MethodDelete, "never-existed", objectDoc{})

			if tw.rejected == 0 {
				t.Error("battery produced no refusals; the non-conformant volleys went missing")
			}
			if tw.accepted == 0 {
				t.Error("battery produced no accepted writes")
			}

			// Invariant: the served model always conforms.
			m, mm, err := e.srv.Model(tw.a)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(mm); err != nil {
				t.Fatalf("served model does not conform after battery: %v", err)
			}
			tw.snapshotsMatch()
		})
	}
}

// wrongTypedValue returns a JSON value guaranteed to violate the
// attribute's kind.
func wrongTypedValue(a metamodel.Attribute) any {
	switch a.Kind.String() {
	case "string", "enum":
		return map[string]any{"not": "a scalar"}
	default:
		return "definitely not a number or bool"
	}
}

// TestHTTPDeltaValidationMode replays a miniature battery on a host
// running the delta validator, covering the second validation path the
// REST front end can sit on. Problem lists are compared as sets here:
// delta validation reports the same violations but scoped to the
// touched objects.
func TestHTTPDeltaValidationMode(t *testing.T) {
	e := newEnv(t, serve.Config{
		MaxResident: 4,
		Quota:       serve.Quota{Runtime: runtime.Config{DeltaValidation: true}},
	})
	e.createTenant("d0", "cml")

	code, _ := e.do("PUT", "/tenants/d0/models/cml/objects/p0",
		objectDoc{Class: "Person", Attrs: map[string]any{"name": "alice"}})
	if code != http.StatusCreated {
		t.Fatalf("delta-mode create: %d", code)
	}
	code, body := e.do("PATCH", "/tenants/d0/models/cml/objects/p0",
		objectDoc{Attrs: map[string]any{"name": nil}})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("delta-mode bad patch: %d %s", code, body)
	}
	p := decodeProblem(t, body)
	if len(p.Problems) == 0 {
		t.Fatalf("delta-mode 422 carries no problems: %s", body)
	}
	got := map[string]bool{}
	for _, pr := range p.Problems {
		got[pr] = true
	}
	// The full validator on the same candidate must agree on every problem.
	next, mm, err := e.srv.Model("d0")
	if err != nil {
		t.Fatal(err)
	}
	next.Get("p0").UnsetAttr("name")
	var ve *metamodel.ValidationError
	if err := next.Validate(mm); !errors.As(err, &ve) {
		t.Fatalf("full validator accepted the non-conformant candidate: %v", err)
	}
	for _, pr := range ve.Problems {
		if !got[pr] {
			t.Errorf("delta 422 is missing full-validator problem %q (got %v)", pr, p.Problems)
		}
	}
	// The committed model is still the conformant one.
	m, mm, err := e.srv.Model("d0")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(mm); err != nil {
		t.Fatalf("served model stopped conforming: %v", err)
	}
	if v, ok := m.Get("p0").Attr("name"); !ok || v != "alice" {
		t.Fatalf("rejected write leaked into the served model: %v %v", v, ok)
	}
}

// TestHTTPProvisionedRoutes spot-checks the "API for free" contract: a
// generated bundle registered with domgen answers on its derived routes
// without any hand-written glue.
func TestHTTPProvisionedRoutes(t *testing.T) {
	doms := batteryDomains(t)
	e := newEnv(t, serve.Config{MaxResident: 4})
	d := doms[3]
	e.createTenant("g0", d.Name)
	_, mm, err := e.srv.Model("g0")
	if err != nil {
		t.Fatal(err)
	}
	code, body := e.do("GET", "/tenants/g0/models/"+mm.Name+"/classes", nil)
	if code != http.StatusOK {
		t.Fatalf("classes: %d %s", code, body)
	}
	var doc struct {
		Metamodel string `json:"metamodel"`
		Classes   []struct {
			Name       string `json:"name"`
			Collection string `json:"collection"`
		} `json:"classes"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metamodel != mm.Name || len(doc.Classes) != len(mm.ClassNames()) {
		t.Fatalf("schema mismatch: %s", body)
	}
	// Every advertised collection URL must answer.
	for _, c := range doc.Classes {
		code, body := e.do("GET", c.Collection, nil)
		if code != http.StatusOK {
			t.Fatalf("collection %s: %d %s", c.Collection, code, body)
		}
	}
	// A wrong model name in the path is a 404 naming the real model.
	code, body = e.do("GET", "/tenants/g0/models/not-the-model/objects", nil)
	if code != http.StatusNotFound {
		t.Fatalf("wrong model name: %d %s", code, body)
	}
	if p := decodeProblem(t, body); len(p.Problems) != 1 || p.Problems[0] != mm.Name {
		t.Fatalf("wrong-model problem should name %q: %s", mm.Name, body)
	}
	// domgen initial models are conformant, so seeding over the direct
	// path and reading back over HTTP agree on the object count.
	if _, err := e.srv.SubmitModel("g0", d.Initial()); err != nil {
		t.Fatal(err)
	}
	code, body = e.do("GET", "/tenants/g0/models/"+mm.Name+"/objects", nil)
	if code != http.StatusOK {
		t.Fatalf("objects: %d %s", code, body)
	}
	var listing struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if want := d.Initial().Len(); listing.Count != want {
		t.Fatalf("objects listing count = %d, want %d", listing.Count, want)
	}
}
