package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/domgen"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/serve"
)

// env is one in-process API stack: a tenant host, the API server over
// it, and an HTTP listener driving it through a real client.
type env struct {
	t   *testing.T
	srv *serve.Server
	api *Server
	ts  *httptest.Server
}

func newEnv(t *testing.T, cfg serve.Config) *env {
	t.Helper()
	if cfg.MaxResident == 0 {
		cfg.MaxResident = 64
	}
	s := serve.NewServer(cfg)
	a, err := New(Config{Serve: s})
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(a)
	e := &env{t: t, srv: s, api: a, ts: ts}
	t.Cleanup(func() {
		a.Close()
		ts.Close()
		s.Close()
	})
	return e
}

// do issues one JSON request against the stack and returns status + body.
func (e *env) do(method, path string, body any) (int, []byte) {
	e.t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (e *env) createTenant(name, bundle string) {
	e.t.Helper()
	code, body := e.do("POST", "/tenants/"+name, map[string]any{"bundle": bundle})
	if code != http.StatusCreated {
		e.t.Fatalf("create tenant %s on %s: %d %s", name, bundle, code, body)
	}
}

// decodeProblem parses a problem document from a non-2xx response body.
func decodeProblem(t *testing.T, body []byte) Problem {
	t.Helper()
	var p Problem
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("response is not problem JSON: %v\n%s", err, body)
	}
	return p
}

// conformantValue produces a valid value for the attribute, different
// per salt so PATCH volleys actually change the model.
func conformantValue(mm *metamodel.Metamodel, a metamodel.Attribute, salt int) any {
	switch a.Kind.String() {
	case "string":
		return fmt.Sprintf("v%d", salt)
	case "int":
		return float64(salt) // JSON numbers arrive as float64; mirror that
	case "float":
		return 0.5 + float64(salt)
	case "bool":
		return salt%2 == 0
	case "enum":
		lits := mm.Enum(a.EnumType).Literals
		return lits[salt%len(lits)]
	default:
		return nil
	}
}

// batteryDomains registers the battery's 8 synthetic domains, sweeping
// the generator's parameter space deterministically. Registration is
// once per test binary; every caller sees the same domains.
var (
	batteryOnce sync.Once
	batteryDoms []*domgen.Domain
	batteryErr  error
)

func batteryDomains(t *testing.T) []*domgen.Domain {
	t.Helper()
	batteryOnce.Do(func() {
		shapes := []string{domgen.ShapeLoop, domgen.ShapeRing, domgen.ShapeStar}
		for i := 0; i < 8; i++ {
			spec := domgen.Spec{
				Name:           fmt.Sprintf("httpapi-%d", i),
				Seed:           9000 + int64(i),
				Classes:        1 + i%7,
				Depth:          i % 3,
				AttrsPerClass:  1 + i%5,
				Enums:          i % 3,
				EnumLiterals:   2 + i%3,
				LTSStates:      1 + i%5,
				LTSShape:       shapes[i%len(shapes)],
				LTSDensity:     float64(i%5) / 4,
				EventTypes:     1 + i%6,
				InitialObjects: 2 + 2*(i%6),
			}
			d, err := domgen.Register(spec)
			if err != nil {
				batteryErr = fmt.Errorf("register battery domain %d: %w", i, err)
				return
			}
			batteryDoms = append(batteryDoms, d)
		}
	})
	if batteryErr != nil {
		t.Fatal(batteryErr)
	}
	return batteryDoms
}

// concreteClasses returns the instantiable classes of mm, sorted.
func concreteClasses(mm *metamodel.Metamodel) []string {
	var out []string
	for _, name := range mm.ClassNames() {
		if !mm.Class(name).Abstract {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
