// Package api auto-provisions a REST + SSE interface over a multi-tenant
// platform server. Routes are derived from each tenant's metamodel —
// classes become collections, attributes become fields — so any DSML
// registered as a bundle (hand-built or domgen-generated) gets an HTTP
// API for free. Every write is funnelled through the compiled validator
// before commit: the served model always conforms, and non-conformant
// requests are rejected with the validator's exact problem list.
//
// Routes:
//
//	GET    /healthz                                     supervisor state
//	GET    /metrics                                     Prometheus text
//	GET    /tenants                                     tenant directory
//	POST   /tenants/{tenant}                            create (body {"bundle": ...})
//	GET    /tenants/{tenant}                            stat / accounting
//	DELETE /tenants/{tenant}                            forget
//	GET    /tenants/{tenant}/models/{model}             full model document
//	GET    /tenants/{tenant}/models/{model}/classes     provisioning schema
//	GET    /tenants/{tenant}/models/{model}/classes/{class}/objects
//	GET    /tenants/{tenant}/models/{model}/objects
//	GET    /tenants/{tenant}/models/{model}/objects/{id}
//	PUT    /tenants/{tenant}/models/{model}/objects/{id}
//	PATCH  /tenants/{tenant}/models/{model}/objects/{id}
//	DELETE /tenants/{tenant}/models/{model}/objects/{id}
//	POST   /tenants/{tenant}/events                     post a domain event
//	GET    /tenants/{tenant}/watch                      SSE model delta stream
//
// In a cluster, tenant-scoped requests for a tenant owned by a peer are
// answered with 307 redirects to the owner's HTTP address from the
// placement map; requests for parked local tenants transparently
// rehydrate them.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/cluster"
	"github.com/mddsm/mddsm/internal/domains"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/serve"
)

// maxBody bounds request document size; larger writes get 413.
const maxBody = 1 << 20

// Config assembles an API server.
type Config struct {
	// Serve is the tenant host every request is answered from. Required.
	Serve *serve.Server
	// Cluster, when set, enables ownership checks: requests for tenants
	// placed on a peer are redirected instead of answered locally.
	Cluster *cluster.Node
	// PeerHTTP maps cluster member IDs to their HTTP base addresses
	// ("host:port" or "http://host:port") for placement redirects.
	PeerHTTP map[string]string
	// Obs is the server-wide observability bundle /metrics renders
	// unlabeled. Defaults to Serve's bundle.
	Obs *obs.Obs
}

// Server is the auto-provisioned HTTP front end. It implements
// http.Handler; mount it on any listener.
type Server struct {
	serve *serve.Server
	node  *cluster.Node
	peers map[string]string
	obs   *obs.Obs
	mux   *http.ServeMux
	hub   *hub
	done  chan struct{}
	once  sync.Once

	mu      sync.Mutex
	writers map[string]*sync.Mutex

	mRequests, mProblems, mWrites, mWritesRejected *obs.Counter
	mEvents, mRedirects                            *obs.Counter
	hRequest                                       *obs.Histogram
}

// New builds the API server over srv and subscribes its watch hub to
// every model the host commits. Install one API server per serve.Server.
func New(cfg Config) (*Server, error) {
	if cfg.Serve == nil {
		return nil, fmt.Errorf("api: Config.Serve is required")
	}
	if cfg.Obs == nil {
		cfg.Obs = cfg.Serve.Obs()
	}
	met := cfg.Obs.MetricsOf()
	s := &Server{
		serve:   cfg.Serve,
		node:    cfg.Cluster,
		peers:   cfg.PeerHTTP,
		obs:     cfg.Obs,
		mux:     http.NewServeMux(),
		done:    make(chan struct{}),
		writers: make(map[string]*sync.Mutex),

		mRequests:       met.Counter(obs.MAPIRequests),
		mProblems:       met.Counter(obs.MAPIProblems),
		mWrites:         met.Counter(obs.MAPIWrites),
		mWritesRejected: met.Counter(obs.MAPIWritesRejected),
		mEvents:         met.Counter(obs.MAPIEventsAccepted),
		mRedirects:      met.Counter(obs.MAPIRedirects),
		hRequest:        met.Histogram(obs.HAPIRequest),
	}
	s.hub = newHub(met)
	cfg.Serve.SetModelObserver(s.hub.publish)
	s.routes()
	return s, nil
}

// Close releases streaming resources: every SSE watcher is disconnected
// and further watch requests are refused. The underlying serve.Server is
// not touched.
func (s *Server) Close() {
	s.once.Do(func() {
		close(s.done)
		s.hub.close()
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /tenants", s.handleTenants)
	s.mux.HandleFunc("POST /tenants/{tenant}", s.tenantRoute(s.handleCreate))
	s.mux.HandleFunc("GET /tenants/{tenant}", s.tenantRoute(s.handleStat))
	s.mux.HandleFunc("DELETE /tenants/{tenant}", s.tenantRoute(s.handleForget))
	s.mux.HandleFunc("GET /tenants/{tenant}/models/{model}", s.tenantRoute(s.handleModel))
	s.mux.HandleFunc("GET /tenants/{tenant}/models/{model}/classes", s.tenantRoute(s.handleClasses))
	s.mux.HandleFunc("GET /tenants/{tenant}/models/{model}/classes/{class}/objects", s.tenantRoute(s.handleClassObjects))
	s.mux.HandleFunc("GET /tenants/{tenant}/models/{model}/objects", s.tenantRoute(s.handleObjects))
	s.mux.HandleFunc("GET /tenants/{tenant}/models/{model}/objects/{id}", s.tenantRoute(s.handleGetObject))
	s.mux.HandleFunc("PUT /tenants/{tenant}/models/{model}/objects/{id}", s.tenantRoute(s.handlePutObject))
	s.mux.HandleFunc("PATCH /tenants/{tenant}/models/{model}/objects/{id}", s.tenantRoute(s.handlePatchObject))
	s.mux.HandleFunc("DELETE /tenants/{tenant}/models/{model}/objects/{id}", s.tenantRoute(s.handleDeleteObject))
	s.mux.HandleFunc("POST /tenants/{tenant}/events", s.tenantRoute(s.handlePostEvent))
	s.mux.HandleFunc("GET /tenants/{tenant}/watch", s.tenantRoute(s.handleWatch))
}

// statusRecorder captures the response code for the problems counter
// while passing Flush through for SSE streams.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP implements http.Handler with request accounting around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w}
	s.mux.ServeHTTP(rec, r)
	s.mRequests.Inc()
	s.hRequest.Observe(time.Since(start))
	if rec.status >= 400 {
		s.mProblems.Inc()
	}
}

// tenantRoute wraps a tenant-scoped handler with the cluster placement
// check: tenants owned by a peer are 307-redirected to that peer's HTTP
// address so any node can be dialled for any tenant.
func (s *Server) tenantRoute(h func(w http.ResponseWriter, r *http.Request, tenant string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("tenant")
		if s.redirected(w, r, tenant) {
			return
		}
		h(w, r, tenant)
	}
}

func (s *Server) redirected(w http.ResponseWriter, r *http.Request, tenant string) bool {
	if s.node == nil {
		return false
	}
	owner := s.node.Owner(tenant)
	if owner == "" || owner == s.node.ID() {
		return false
	}
	s.mRedirects.Inc()
	base, ok := s.peers[owner]
	if !ok {
		writeProblem(w, http.StatusBadGateway, "tenant owned by peer",
			fmt.Sprintf("tenant %q is placed on member %q, which has no known HTTP address", tenant, owner), nil)
		return true
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	http.Redirect(w, r, strings.TrimRight(base, "/")+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	return true
}

// writeLock serialises REST writes per tenant so concurrent
// read-mutate-submit cycles do not lose updates.
func (s *Server) writeLock(tenant string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	lk, ok := s.writers[tenant]
	if !ok {
		lk = &sync.Mutex{}
		s.writers[tenant] = lk
	}
	return lk
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	comps := s.serve.Health()
	status, code := "ok", http.StatusOK
	for _, h := range comps {
		switch h {
		case "quarantined":
			status, code = "quarantined", http.StatusServiceUnavailable
		case "degraded":
			if status == "ok" {
				status = "degraded"
			}
		}
	}
	doc := map[string]any{
		"status":     status,
		"resident":   s.serve.Resident(),
		"tenants":    len(s.serve.Tenants()),
		"components": comps,
	}
	if s.node != nil {
		doc["node"] = s.node.ID()
		doc["members"] = s.node.Members()
	}
	writeJSON(w, code, doc)
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants":  s.serve.Tenants(),
		"resident": s.serve.Resident(),
		"bundles":  domains.Names(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request, tenant string) {
	var doc struct {
		Bundle string `json:"bundle"`
	}
	if !decodeBody(w, r, &doc) {
		return
	}
	if doc.Bundle == "" {
		writeProblem(w, http.StatusBadRequest, "missing bundle",
			"request body must name the domain bundle to provision", domains.Names())
		return
	}
	if err := s.serve.Create(tenant, doc.Bundle); err != nil {
		serveCreateProblem(w, err)
		return
	}
	_, mm, err := s.serve.Model(tenant)
	if err != nil {
		serveProblem(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"tenant":    tenant,
		"bundle":    doc.Bundle,
		"metamodel": mm.Name,
		"model":     "/tenants/" + tenant + "/models/" + mm.Name,
	})
}

// serveCreateProblem distinguishes the Create refusals: duplicates are
// conflicts, anything else (unknown bundle, empty name) is a bad request
// listing the bundles that do exist.
func serveCreateProblem(w http.ResponseWriter, err error) {
	if errors.Is(err, serve.ErrTenantExists) {
		serveProblem(w, err)
		return
	}
	writeProblem(w, http.StatusBadRequest, "cannot create tenant", err.Error(), domains.Names())
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request, tenant string) {
	st, err := s.serve.Stat(tenant)
	if err != nil {
		serveProblem(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleForget(w http.ResponseWriter, r *http.Request, tenant string) {
	if err := s.serve.Forget(tenant); err != nil {
		serveProblem(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePostEvent(w http.ResponseWriter, r *http.Request, tenant string) {
	var doc struct {
		Name  string         `json:"name"`
		Attrs map[string]any `json:"attrs"`
	}
	if !decodeBody(w, r, &doc) {
		return
	}
	if doc.Name == "" {
		writeProblem(w, http.StatusBadRequest, "missing event name",
			`request body must carry {"name": ..., "attrs": {...}}`, nil)
		return
	}
	if err := s.serve.PostEvent(tenant, broker.Event{Name: doc.Name, Attrs: doc.Attrs}); err != nil {
		serveProblem(w, err)
		return
	}
	s.mEvents.Inc()
	writeJSON(w, http.StatusAccepted, map[string]any{"accepted": true, "event": doc.Name})
}

// decodeBody parses a bounded JSON request body, writing a 400 problem
// (or 413 when over the size cap) on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(body)
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "request body too large") {
			status = http.StatusRequestEntityTooLarge
		}
		writeProblem(w, status, "malformed request body", err.Error(), nil)
		return false
	}
	return true
}
