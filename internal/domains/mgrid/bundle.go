package mgrid

import (
	"sync"

	"github.com/mddsm/mddsm/internal/domains"
	"github.com/mddsm/mddsm/internal/runtime"
)

// sharedDSML memoises the MGML metamodel so instances provisioned through
// the bundle registry share one compiled conformance validator.
var sharedDSML = sync.OnceValue(Metamodel)

func init() {
	domains.Register(domains.Bundle{
		Name: "mgrid",
		Doc:  "microgrid platform (MGridVM): sources, loads and battery policy over a simulated plant",
		Assemble: func(cfg domains.Config) (*domains.Instance, error) {
			vm, def, _ := assemble(optionsFrom(cfg))
			def.DSML = sharedDSML()
			return domains.NewInstance(def,
				func() string { return vm.Plant.Trace().String() },
				func(p *runtime.Platform, restored bool) {
					vm.Platform = p
					// Construction seeds the autonomic telemetry variables;
					// a restored snapshot's checkpointed values win, the
					// seeds fill only the keys it does not carry.
					ctx := p.Broker.Context()
					if _, ok := ctx.Get("batteryCharge"); !ok || !restored {
						ctx.Set("batteryCharge", 1e9)
					}
					if _, ok := ctx.Get("reserveKWh"); !ok || !restored {
						ctx.Set("reserveKWh", 0.0)
					}
				},
			), nil
		},
	})
}

// optionsFrom maps a bundle config onto this package's option surface
// (the zero Resilience disables itself, so it passes through unguarded).
func optionsFrom(cfg domains.Config) []Option {
	opts := []Option{WithResilience(cfg.Resilience)}
	if cfg.Obs != nil {
		opts = append(opts, WithObs(cfg.Obs))
	}
	if cfg.Injector != nil {
		opts = append(opts, WithFault(cfg.Injector))
	}
	return opts
}
