// Package mgrid implements the Microgrid Modeling Language (MGridML) and
// the Microgrid Virtual Machine (MGridVM) on top of the MD-DSM core (paper
// §IV-B). MGridML models express the configuration requirements of energy
// management in a microgrid (such as a home); MGridVM interprets the model
// to realise the state of the system through the simulated plant in
// internal/resources/microgrid.
//
// Unlike the communication domain, the microgrid platform follows the
// semantics of a centralised application: a shared main processing unit,
// full resource visibility and policy-driven autonomic behaviour at the
// hardware-broker layer (MHB). The four layers carry the paper's names:
// MUI, MSE, MCM, MHB.
package mgrid

import (
	"fmt"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/resources/microgrid"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

// MetamodelName identifies the MGridML metamodel.
const MetamodelName = "mgridml"

// Domain is the classifier-domain name.
const Domain = "mgrid"

// LTSName names the synthesis semantics.
const LTSName = "mgrid-synthesis"

// Metamodel builds the MGridML metamodel: the microgrid root, its device
// configurations and the energy policies the user declares.
func Metamodel() *metamodel.Metamodel {
	m := metamodel.New(MetamodelName)
	m.MustAddEnum(&metamodel.Enum{Name: "DeviceKind",
		Literals: []string{"solar", "battery", "load", "gridtie"}})
	m.MustAddClass(&metamodel.Class{Name: "Microgrid",
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "devices", Target: "DeviceCfg", Containment: true, Many: true},
			{Name: "policies", Target: "EnergyPolicy", Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: "DeviceCfg",
		Attributes: []metamodel.Attribute{
			{Name: "kind", Kind: metamodel.KindEnum, EnumType: "DeviceKind", Required: true},
			{Name: "capacity", Kind: metamodel.KindFloat, Required: true},
			{Name: "output", Kind: metamodel.KindFloat, Default: 0.0},
			{Name: "online", Kind: metamodel.KindBool, Default: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: "EnergyPolicy",
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			// reserve is the battery fraction below which load shedding
			// is requested.
			{Name: "reserve", Kind: metamodel.KindFloat, Default: 0.2},
		},
	})
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("mgridml metamodel: %v", err))
	}
	return m
}

// SynthesisLTS encodes the MGridML synthesis semantics.
func SynthesisLTS() *lts.LTS {
	l := lts.New(LTSName, "run")
	l.On("run", "add-object:DeviceCfg", "", "run",
		lts.CommandTemplate{Op: "provisionDevice", Target: "device:{id}",
			Args: map[string]string{
				"kind": "{kind}", "capacity": "{capacity}",
				"output": "{output}", "online": "{online}",
			}})
	l.On("run", "remove-object:DeviceCfg", "", "run",
		lts.CommandTemplate{Op: "decommissionDevice", Target: "device:{id}"})
	l.On("run", "set-attr:DeviceCfg.output", "", "run",
		lts.CommandTemplate{Op: "dispatchOutput", Target: "device:{id}",
			Args: map[string]string{"kw": "{new}"}})
	l.On("run", "set-attr:DeviceCfg.online", "", "run",
		lts.CommandTemplate{Op: "switchDevice", Target: "device:{id}",
			Args: map[string]string{"online": "{new}"}})
	l.On("run", "add-object:EnergyPolicy", "", "run",
		lts.CommandTemplate{Op: "armPolicy", Target: "policy:{id}",
			Args: map[string]string{"name": "{name}", "reserve": "{reserve}"}})
	l.On("run", "remove-object:EnergyPolicy", "", "run",
		lts.CommandTemplate{Op: "disarmPolicy", Target: "policy:{id}"})
	// Rebalance requests raised by the MCM's event handler when telemetry
	// shows over-draw; users may also trigger it via model updates.
	l.On("run", "event:rebalanceNeeded", "", "run",
		lts.CommandTemplate{Op: "balance", Target: "grid",
			Args: map[string]string{"headroom": "{headroom}"}})
	return l
}

// Taxonomy builds the microgrid classifier hierarchy.
func Taxonomy() *dsc.Taxonomy {
	tx := dsc.NewTaxonomy()
	add := func(id, parent string, cat dsc.Category, desc string) {
		tx.MustAdd(&dsc.DSC{ID: id, Name: id, Domain: Domain, Category: cat,
			Parent: parent, Description: desc})
	}
	add("mgrid.balance", "", dsc.Operation, "rebalance generation vs consumption")
	add("mgrid.source", "", dsc.Operation, "raise generation")
	add("mgrid.source.battery", "mgrid.source", dsc.Operation, "discharge the battery")
	add("mgrid.source.grid", "mgrid.source", dsc.Operation, "import from the grid")
	add("mgrid.relief", "", dsc.Operation, "reduce consumption")
	add("mgrid.data.telemetry", "", dsc.Data, "plant telemetry snapshot")
	if err := tx.Validate(); err != nil {
		panic(fmt.Sprintf("mgrid taxonomy: %v", err))
	}
	return tx
}

// Procedures builds the energy-management procedures: the balance goal has
// battery-first and grid-first strategies; relief sheds load.
func Procedures() []*registry.Procedure {
	return []*registry.Procedure{
		{
			ID: "balanceBatteryFirst", Name: "battery-first balance", Domain: Domain,
			ClassifiedBy: "mgrid.balance",
			Dependencies: []string{"mgrid.source.battery"},
			Cost:         5, Reliability: 0.98,
			Tags: map[string]string{"strategy": "green"},
			Unit: eu.NewUnit("balanceBatteryFirst",
				eu.Call("mgrid.source.battery"),
			),
		},
		{
			ID: "balanceGridFirst", Name: "grid-first balance", Domain: Domain,
			ClassifiedBy: "mgrid.balance",
			Dependencies: []string{"mgrid.source.grid"},
			Cost:         3, Reliability: 0.999,
			Tags: map[string]string{"strategy": "grid"},
			Unit: eu.NewUnit("balanceGridFirst",
				eu.Call("mgrid.source.grid"),
			),
		},
		{
			ID: "batteryDischarge", Name: "battery discharge", Domain: Domain,
			ClassifiedBy: "mgrid.source.battery",
			Cost:         2, Reliability: 0.97,
			Unit: eu.NewUnit("batteryDischarge",
				eu.Invoke("setOutput", "device:battery", "kw", "headroom"),
			),
		},
		{
			ID: "gridImport", Name: "grid import", Domain: Domain,
			ClassifiedBy: "mgrid.source.grid",
			Cost:         1, Reliability: 0.999,
			Unit: eu.NewUnit("gridImport",
				eu.Invoke("setOutput", "device:gridtie", "kw", "headroom"),
			),
		},
		{
			ID: "shedDiscretionary", Name: "shed discretionary load", Domain: Domain,
			ClassifiedBy: "mgrid.relief",
			Cost:         4, Reliability: 0.99,
			Unit: eu.NewUnit("shedDiscretionary",
				eu.Invoke("shedLoad", "device:load", "kw", "1"),
			),
		},
	}
}

// Adapter bridges MHB resource commands to the simulated plant.
type Adapter struct {
	plant *microgrid.Plant
}

var _ broker.Adapter = (*Adapter)(nil)

// NewAdapter wraps a plant.
func NewAdapter(plant *microgrid.Plant) *Adapter { return &Adapter{plant: plant} }

func deviceID(target string) string {
	for i := 0; i < len(target); i++ {
		if target[i] == ':' {
			return target[i+1:]
		}
	}
	return target
}

// Execute implements broker.Adapter.
func (a *Adapter) Execute(cmd script.Command) error {
	id := deviceID(cmd.Target)
	switch cmd.Op {
	case "registerDevice":
		return a.plant.RegisterDevice(id, microgrid.DeviceKind(cmd.StringArg("kind")), cmd.NumArg("capacity"))
	case "setOnline":
		return a.plant.SetOnline(id, cmd.BoolArg("online"))
	case "setOutput":
		return a.plant.SetOutput(id, cmd.NumArg("kw"))
	case "shedLoad":
		return a.plant.ShedLoad(id, cmd.NumArg("kw"))
	default:
		return fmt.Errorf("mgrid adapter: unknown op %q", cmd.Op)
	}
}

// MiddlewareModel authors the MGridVM middleware model (layers MUI, MSE,
// MCM, MHB). The MCM relies mostly on predefined actions — the centralised
// domain favours efficiency over flexibility (paper §VI) — with the balance
// operation as the Case-2 exception, and the MHB carries the autonomic
// battery-reserve symptom.
func MiddlewareModel() *metamodel.Model {
	b := mwmeta.NewBuilder("MGridVM", Domain)
	b.UILayer("MUI")
	b.SynthesisLayer("MSE", LTSName)
	b.ControllerLayer("MCM").
		// provisionDevice fans out to register + switch + dispatch.
		Action("provision", "provisionDevice", "",
			mwmeta.StepSpec{Op: "registerDevice", Target: "{target}",
				Args: map[string]string{"kind": "{kind}", "capacity": "{capacity}"}},
			mwmeta.StepSpec{Op: "setOnline", Target: "{target}",
				Args: map[string]string{"online": "{online}"}},
			mwmeta.StepSpec{Op: "setOutput", Target: "{target}",
				Args: map[string]string{"kw": "{output}"}}).
		Action("decommission", "decommissionDevice", "",
			mwmeta.StepSpec{Op: "setOnline", Target: "{target}",
				Args: map[string]string{"online": "false"}}).
		PassthroughAction("dispatch", "dispatchOutput", "",
			mwmeta.StepSpec{Op: "setOutput", Target: "{target}"}).
		Action("switch", "switchDevice", "",
			mwmeta.StepSpec{Op: "setOnline", Target: "{target}",
				Args: map[string]string{"online": "{online}"}}).
		Action("armPolicy", "armPolicy,disarmPolicy", "").
		Class("balance", "mgrid.balance").
		// Green contexts prefer the battery-first strategy.
		Policy(mwmeta.PolicySpec{
			Name: "greenMode", Priority: 5, Condition: "greenMode",
			Effects: map[string]string{"preferTag": "strategy=green"},
		}).
		Done().
		BrokerLayer("MHB").
		PassthroughAction("plant", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		// Autonomic manager: when the battery runs low, shed the
		// discretionary load (self-configuration at the broker layer).
		Symptom("batteryReserveLow", "batteryCharge < reserveKWh").
		ChangePlan("batteryReserveLow",
			mwmeta.StepSpec{Op: "shedLoad", Target: "device:load",
				Args: map[string]string{"kw": "1"}}).
		Bind("*", "plant")
	return b.Model()
}

// MGridVM is the microgrid virtual machine wired to a simulated plant.
type MGridVM struct {
	Platform *runtime.Platform
	Plant    *microgrid.Plant
	Clock    simtime.Clock
}

// Option customises MGridVM construction.
type Option func(*buildOptions)

type buildOptions struct {
	obs        *obs.Obs
	injector   *fault.Injector
	resilience fault.Resilience
	runtime    []runtime.Option
}

// WithObs instruments every layer of the MGridVM with the given
// observability bundle (tracing + metrics).
func WithObs(o *obs.Obs) Option {
	return func(b *buildOptions) { b.obs = o }
}

// WithFault arms the MGridVM's fault points with the given injector.
func WithFault(in *fault.Injector) Option {
	return func(b *buildOptions) { b.injector = in }
}

// WithResilience configures retry, step timeouts, and circuit-breaking
// across the MGridVM's layers.
func WithResilience(r fault.Resilience) Option {
	return func(b *buildOptions) { b.resilience = r }
}

// WithRuntime forwards platform-level runtime options (pump sharding,
// queue capacity, drain timeout, ...) to the underlying engine.
func WithRuntime(opts ...runtime.Option) Option {
	return func(b *buildOptions) { b.runtime = append(b.runtime, opts...) }
}

// New builds an MGridVM on a virtual clock. Plant events are delivered
// synchronously into the MHB.
func New(opts ...Option) (*MGridVM, error) {
	vm, def, bo := assemble(opts)
	p, err := core.Build(def, bo.runtime...)
	if err != nil {
		return nil, fmt.Errorf("mgridvm: %w", err)
	}
	vm.Platform = p
	// The armPolicy action carries the reserve threshold into the MHB's
	// autonomic context; seed the telemetry variables so symptoms are
	// observable from the start.
	p.Broker.Context().Set("batteryCharge", 1e9)
	p.Broker.Context().Set("reserveKWh", 0.0)
	return vm, nil
}

// Restoring an MGridVM from a runtime.Checkpoint snapshot goes through
// the bundle registry: domains.Restore("mgrid", snapshot, cfg) — the
// single registry-driven restore path that replaced the per-domain
// copies. Checkpointed context values win over the construction-time
// telemetry seeds: the seeds fill only the keys the snapshot does not
// carry.

// assemble wires the MGridVM shell (clock + simulated plant) and the
// MD-DSM definition that Build and Restore share.
func assemble(opts []Option) (*MGridVM, core.Definition, *buildOptions) {
	var bo buildOptions
	for _, o := range opts {
		o(&bo)
	}
	clock := simtime.NewVirtual()
	vm := &MGridVM{Clock: clock}
	vm.Plant = microgrid.NewPlant(clock, func(e microgrid.Event) {
		if vm.Platform != nil {
			_ = vm.Platform.DeliverEvent(e.Broker())
		}
	})
	def := core.Definition{
		Name:       "mgridvm",
		DSML:       Metamodel(),
		Middleware: MiddlewareModel(),
		DSK: core.DSK{
			Taxonomy:   Taxonomy(),
			Procedures: Procedures(),
			LTSes:      map[string]*lts.LTS{LTSName: SynthesisLTS()},
			Adapters:   map[string]broker.Adapter{"plant": NewAdapter(vm.Plant)},
		},
		Clock:      clock,
		Obs:        bo.obs,
		Injector:   bo.injector,
		Resilience: bo.resilience,
	}
	return vm, def, &bo
}

// publishTelemetry copies the current plant telemetry into the MHB context.
func (vm *MGridVM) publishTelemetry() {
	tel := vm.Plant.Telemetry()
	ctx := vm.Platform.Broker.Context()
	ctx.Set("batteryCharge", tel.BatteryCharge)
	ctx.Set("generation", tel.Generation)
	ctx.Set("consumption", tel.Consumption)
	ctx.Set("gridImport", tel.GridImport)
}

// SyncTelemetry publishes current plant telemetry into the MHB context and
// evaluates autonomic symptoms synchronously. Deterministic tests and the
// examples call it after Tick; long-running deployments use
// StartMonitoring instead.
func (vm *MGridVM) SyncTelemetry() error {
	vm.publishTelemetry()
	return vm.Platform.Broker.Autonomic().Evaluate()
}

// StartMonitoring launches the platform's autonomic monitor, publishing
// plant telemetry every interval. Stop it with vm.Platform.Stop (or
// StopMonitor).
func (vm *MGridVM) StartMonitoring(interval time.Duration) {
	vm.Platform.Monitor(runtime.WithInterval(interval), runtime.WithProbe(vm.publishTelemetry))
}

// SetReserve arms the autonomic battery reserve at the given kWh.
func (vm *MGridVM) SetReserve(kwh float64) {
	vm.Platform.Broker.Context().Set("reserveKWh", kwh)
}
