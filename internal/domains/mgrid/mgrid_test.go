package mgrid

import (
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/resources/microgrid"
	"github.com/mddsm/mddsm/internal/script"
)

func TestDefinitionValidates(t *testing.T) {
	def := core.Definition{
		Name:       "mgridvm",
		DSML:       Metamodel(),
		Middleware: MiddlewareModel(),
		DSK: core.DSK{
			Taxonomy:   Taxonomy(),
			Procedures: Procedures(),
			LTSes:      map[string]*lts.LTS{LTSName: SynthesisLTS()},
		},
	}
	if err := def.Validate(); err != nil {
		t.Fatalf("MGridVM definition must validate: %v", err)
	}
}

func homeModel(vm *MGridVM, t *testing.T) *metamodel.Model {
	t.Helper()
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("home", "Microgrid").
		SetAttr("name", "Casa").
		SetRef("devices", "solar", "battery", "load", "gridtie").
		SetRef("policies", "reserve")
	d.MustAdd("solar", "DeviceCfg").
		SetAttr("kind", "solar").SetAttr("capacity", 5).SetAttr("output", 3)
	d.MustAdd("battery", "DeviceCfg").
		SetAttr("kind", "battery").SetAttr("capacity", 10)
	d.MustAdd("load", "DeviceCfg").
		SetAttr("kind", "load").SetAttr("capacity", 8).SetAttr("output", -4)
	d.MustAdd("gridtie", "DeviceCfg").
		SetAttr("kind", "gridtie").SetAttr("capacity", 20)
	d.MustAdd("reserve", "EnergyPolicy").
		SetAttr("name", "battery-reserve").SetAttr("reserve", 0.25)
	return d.Model()
}

func newVM(t *testing.T) *MGridVM {
	t.Helper()
	vm, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestModelProvisionsPlant(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.Platform.SubmitModel(homeModel(vm, t)); err != nil {
		t.Fatal(err)
	}
	ids := vm.Plant.DeviceIDs()
	if strings.Join(ids, ",") != "battery,gridtie,load,solar" {
		t.Fatalf("devices: %v", ids)
	}
	solar, _ := vm.Plant.Device("solar")
	if !solar.Online || solar.Output != 3 {
		t.Errorf("solar: %+v", solar)
	}
	load, _ := vm.Plant.Device("load")
	if load.Output != -4 {
		t.Errorf("load: %+v", load)
	}
	tel := vm.Plant.Telemetry()
	if tel.Generation != 3 || tel.Consumption != 4 || tel.GridImport != 1 {
		t.Errorf("telemetry: %+v", tel)
	}
}

func TestModelUpdateRedispatches(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.Platform.SubmitModel(homeModel(vm, t)); err != nil {
		t.Fatal(err)
	}
	edit := vm.Platform.UI.EditDraft()
	edit.Object("solar").SetAttr("output", 5)
	edit.Object("load").SetAttr("online", false)
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	solar, _ := vm.Plant.Device("solar")
	if solar.Output != 5 {
		t.Errorf("solar redispatch: %+v", solar)
	}
	load, _ := vm.Plant.Device("load")
	if load.Online {
		t.Errorf("load must be off: %+v", load)
	}
}

func TestDeviceDecommission(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.Platform.SubmitModel(homeModel(vm, t)); err != nil {
		t.Fatal(err)
	}
	edit := vm.Platform.UI.EditDraft()
	if err := edit.Remove("load"); err != nil {
		t.Fatal(err)
	}
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	load, _ := vm.Plant.Device("load")
	if load.Online {
		t.Error("decommissioned device must be offline")
	}
}

func TestBalanceViaIntentGeneration(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.Platform.SubmitModel(homeModel(vm, t)); err != nil {
		t.Fatal(err)
	}
	// Default (no green mode): cost-optimal balance = grid-first.
	s := script.New("bal").Append(
		script.NewCommand("balance", "grid").WithArg("headroom", 2),
	)
	if err := vm.Platform.Execute(s); err != nil {
		t.Fatal(err)
	}
	gt, _ := vm.Plant.Device("gridtie")
	if gt.Output != 2 {
		t.Errorf("grid import expected: %+v", gt)
	}

	// Green mode prefers the battery-first strategy.
	vm.Platform.Controller.Context().Set("greenMode", true)
	s2 := script.New("bal2").Append(
		script.NewCommand("balance", "grid").WithArg("headroom", 1.5),
	)
	if err := vm.Platform.Execute(s2); err != nil {
		t.Fatal(err)
	}
	bat, _ := vm.Plant.Device("battery")
	if bat.Output != 1.5 {
		t.Errorf("battery discharge expected: %+v", bat)
	}
	if vm.Platform.Controller.Stats().Case2 != 2 {
		t.Errorf("stats: %+v", vm.Platform.Controller.Stats())
	}
}

func TestAutonomicLoadShedding(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.Platform.SubmitModel(homeModel(vm, t)); err != nil {
		t.Fatal(err)
	}
	vm.SetReserve(3) // shed when the battery drops under 3 kWh
	// Discharge the battery hard.
	s := script.New("drain").Append(
		script.NewCommand("dispatchOutput", "device:battery").WithArg("kw", 5),
	)
	if err := vm.Platform.Execute(s); err != nil {
		t.Fatal(err)
	}
	vm.Plant.Tick(30 * time.Minute) // 5 kWh -> 2.5 kWh
	if err := vm.SyncTelemetry(); err != nil {
		t.Fatal(err)
	}
	load, _ := vm.Plant.Device("load")
	if load.Output != -1 {
		t.Errorf("autonomic shedding should cap the load at 1 kW: %+v", load)
	}
	handled := vm.Platform.Broker.Autonomic().Handled()
	if len(handled) != 1 || handled[0].Symptom != "batteryReserveLow" {
		t.Errorf("autonomic requests: %+v", handled)
	}
}

func TestAdapterErrors(t *testing.T) {
	plant := microgrid.NewPlant(nil, nil)
	a := NewAdapter(plant)
	if err := a.Execute(script.NewCommand("mystery", "device:x")); err == nil {
		t.Error("unknown op must fail")
	}
	if err := a.Execute(script.NewCommand("setOutput", "device:ghost").WithArg("kw", 1)); err == nil {
		t.Error("unknown device must fail")
	}
	if deviceID("device:x") != "x" || deviceID("bare") != "bare" {
		t.Error("deviceID")
	}
}

func TestCoverageComplete(t *testing.T) {
	def := core.Definition{
		Name: "mgridvm", DSML: Metamodel(), Middleware: MiddlewareModel(),
		DSK: core.DSK{
			Taxonomy: Taxonomy(), Procedures: Procedures(),
			LTSes: map[string]*lts.LTS{LTSName: SynthesisLTS()},
		},
	}
	cov, err := core.AnalyzeCoverage(def)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Fatalf("MGridVM coverage incomplete: %v", cov.UnroutableOps)
	}
}

// TestDaySimulation runs a 24-virtual-hour day against the MGridVM:
// a solar curve drives generation, the household load varies, the user's
// model is edited mid-day, and the autonomic manager protects the battery
// reserve overnight. It exercises the full platform loop (model updates,
// telemetry sync, symptom handling) over an extended horizon.
func TestDaySimulation(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.Platform.SubmitModel(homeModel(vm, t)); err != nil {
		t.Fatal(err)
	}
	vm.SetReserve(2)

	// Piecewise solar curve (kW per 2-hour slot) and household draw.
	solar := []float64{0, 0, 0, 1, 3, 5, 5, 4, 2, 0, 0, 0}
	draw := []float64{-1, -1, -1, -2, -2, -3, -3, -4, -5, -5, -3, -2}

	for slot := 0; slot < 12; slot++ {
		edit := vm.Platform.UI.EditDraft()
		edit.Object("solar").SetAttr("output", solar[slot])
		edit.Object("load").SetAttr("output", draw[slot])
		if _, err := edit.Submit(); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		// Cover any deficit: battery discharges; surplus charges it.
		tel := vm.Plant.Telemetry()
		gap := tel.Consumption - tel.Generation
		bat, _ := vm.Plant.Device("battery")
		kw := gap
		if kw > bat.Capacity {
			kw = bat.Capacity
		}
		if kw < -bat.Capacity {
			kw = -bat.Capacity
		}
		s := script.New("dispatch").Append(
			script.NewCommand("dispatchOutput", "device:battery").WithArg("kw", kw))
		if err := vm.Platform.Execute(s); err != nil {
			t.Fatalf("slot %d dispatch: %v", slot, err)
		}
		vm.Plant.Tick(2 * time.Hour)
		if err := vm.SyncTelemetry(); err != nil {
			t.Fatalf("slot %d telemetry: %v", slot, err)
		}
	}

	// Over the day the battery was stressed; the reserve symptom must have
	// fired at least once and shed the load.
	handled := vm.Platform.Broker.Autonomic().Handled()
	if len(handled) == 0 {
		t.Fatal("expected at least one autonomic intervention over the day")
	}
	bat, _ := vm.Plant.Device("battery")
	if bat.Charge < 0 || bat.Charge > bat.Capacity {
		t.Errorf("battery out of bounds: %+v", bat)
	}
	// The platform's runtime model still matches the last submission.
	if vm.Platform.UI.RuntimeModel().Len() != 6 {
		t.Errorf("runtime model size: %d", vm.Platform.UI.RuntimeModel().Len())
	}
}

func TestStartMonitoring(t *testing.T) {
	vm := newVM(t)
	if _, err := vm.Platform.SubmitModel(homeModel(vm, t)); err != nil {
		t.Fatal(err)
	}
	vm.SetReserve(3)
	s := script.New("drain").Append(
		script.NewCommand("dispatchOutput", "device:battery").WithArg("kw", 5))
	if err := vm.Platform.Execute(s); err != nil {
		t.Fatal(err)
	}
	vm.Plant.Tick(time.Hour) // 5 kWh -> 0 kWh: deep under the reserve
	vm.StartMonitoring(2 * time.Millisecond)
	defer vm.Platform.Stop()
	deadline := time.After(2 * time.Second)
	for len(vm.Platform.Broker.Autonomic().Handled()) == 0 {
		select {
		case <-deadline:
			t.Fatal("monitor never fired the reserve plan")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	load, _ := vm.Plant.Device("load")
	if load.Output != -1 {
		t.Errorf("load after autonomic shedding: %+v", load)
	}
}
