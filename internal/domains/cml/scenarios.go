package cml

import (
	"github.com/mddsm/mddsm/internal/script"
)

// Step is one action of a communication scenario: either a broker-level
// call (Call non-nil) or an injected stream failure (FailStream non-"").
type Step struct {
	Call        *script.Command
	FailSession string
	FailStream  string
}

// call makes a call step.
func call(op, target string, kv ...any) Step {
	c := script.NewCommand(op, target)
	for i := 0; i+1 < len(kv); i += 2 {
		c = c.WithArg(kv[i].(string), kv[i+1])
	}
	return Step{Call: &c}
}

// fail makes a failure-injection step.
func fail(session, stream string) Step {
	return Step{FailSession: session, FailStream: stream}
}

// Scenario is a named multimedia communication scenario (paper §VII-A: a
// set of eight scenarios covering session establishment, reconfiguration
// and recovery from failures).
type Scenario struct {
	Name  string
	Steps []Step
}

// Scenarios returns the eight-scenario suite. Both the model-based and the
// handcrafted Broker implementations are driven with exactly these steps;
// behavioural equivalence requires their service traces to match.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "two-party-audio-establishment",
			Steps: []Step{
				call("createSession", "session:s1"),
				call("addParticipant", "session:s1", "who", "alice"),
				call("addParticipant", "session:s1", "who", "bob"),
				call("openStream", "stream:a1", "session", "s1", "media", "audio", "bandwidth", 64),
				call("sendData", "stream:a1", "session", "s1", "bytes", 2048),
				call("closeSession", "session:s1"),
			},
		},
		{
			Name: "three-party-conference-setup",
			Steps: []Step{
				call("createSession", "session:conf"),
				call("addParticipant", "session:conf", "who", "alice"),
				call("addParticipant", "session:conf", "who", "bob"),
				call("addParticipant", "session:conf", "who", "carol"),
				call("openStream", "stream:mix", "session", "conf", "media", "audio", "bandwidth", 128),
				call("sendData", "stream:mix", "session", "conf", "bytes", 4096),
				call("closeSession", "session:conf"),
			},
		},
		{
			Name: "media-upgrade-audio-to-video",
			Steps: []Step{
				call("createSession", "session:s2"),
				call("addParticipant", "session:s2", "who", "alice"),
				call("addParticipant", "session:s2", "who", "bob"),
				call("openStream", "stream:m1", "session", "s2", "media", "audio", "bandwidth", 64),
				call("reconfigureStream", "stream:m1", "session", "s2", "media", "video", "bandwidth", 512),
				call("sendData", "stream:m1", "session", "s2", "bytes", 65536),
				call("closeSession", "session:s2"),
			},
		},
		{
			Name: "bandwidth-renegotiation",
			Steps: []Step{
				call("createSession", "session:s3"),
				call("addParticipant", "session:s3", "who", "alice"),
				call("openStream", "stream:v1", "session", "s3", "media", "video", "bandwidth", 512),
				call("reconfigureStream", "stream:v1", "session", "s3", "media", "video", "bandwidth", 256),
				call("reconfigureStream", "stream:v1", "session", "s3", "media", "video", "bandwidth", 128),
				call("closeSession", "session:s3"),
			},
		},
		{
			Name: "participant-churn",
			Steps: []Step{
				call("createSession", "session:s4"),
				call("addParticipant", "session:s4", "who", "alice"),
				call("addParticipant", "session:s4", "who", "bob"),
				call("removeParticipant", "session:s4", "who", "alice"),
				call("addParticipant", "session:s4", "who", "dave"),
				call("removeParticipant", "session:s4", "who", "bob"),
				call("closeSession", "session:s4"),
			},
		},
		{
			Name: "stream-failure-recovery",
			Steps: []Step{
				call("createSession", "session:s5"),
				call("addParticipant", "session:s5", "who", "alice"),
				call("openStream", "stream:f1", "session", "s5", "media", "video", "bandwidth", 512),
				fail("s5", "f1"),
				call("sendData", "stream:f1", "session", "s5", "bytes", 1024),
				call("closeSession", "session:s5"),
			},
		},
		{
			Name: "multi-stream-session",
			Steps: []Step{
				call("createSession", "session:s6"),
				call("addParticipant", "session:s6", "who", "alice"),
				call("addParticipant", "session:s6", "who", "bob"),
				call("openStream", "stream:aa", "session", "s6", "media", "audio", "bandwidth", 64),
				call("openStream", "stream:vv", "session", "s6", "media", "video", "bandwidth", 512),
				call("openStream", "stream:cc", "session", "s6", "media", "chat", "bandwidth", 8),
				call("sendData", "stream:cc", "session", "s6", "bytes", 256),
				call("closeStream", "stream:vv", "session", "s6"),
				call("closeSession", "session:s6"),
			},
		},
		{
			Name: "full-lifecycle",
			Steps: []Step{
				call("createSession", "session:s7"),
				call("addParticipant", "session:s7", "who", "alice"),
				call("addParticipant", "session:s7", "who", "bob"),
				call("openStream", "stream:x1", "session", "s7", "media", "audio", "bandwidth", 64),
				call("reconfigureStream", "stream:x1", "session", "s7", "media", "video", "bandwidth", 384),
				fail("s7", "x1"),
				call("sendData", "stream:x1", "session", "s7", "bytes", 512),
				call("removeParticipant", "session:s7", "who", "bob"),
				call("closeSession", "session:s7"),
			},
		},
	}
}

// Caller is anything that accepts broker-level calls: the model-based NCB
// (broker.Broker) and the handcrafted baseline both satisfy it.
type Caller interface {
	Call(cmd script.Command) error
}

// FailureInjector injects a stream failure into the underlying service.
type FailureInjector interface {
	InjectStreamFailure(sessionID, streamID string) error
}

// RunScenario drives one scenario against a broker implementation and its
// service.
func RunScenario(s Scenario, b Caller, svc FailureInjector) error {
	for _, st := range s.Steps {
		if st.Call != nil {
			if err := b.Call(*st.Call); err != nil {
				return err
			}
			continue
		}
		if err := svc.InjectStreamFailure(st.FailSession, st.FailStream); err != nil {
			return err
		}
	}
	return nil
}
