package cml

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/resources/comm"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/simtime"
)

// MiddlewareModel authors the CVM middleware model: the four layers of
// Fig. 3 (UCI, SE, UCM, NCB) as an instance of the common middleware
// metamodel.
func MiddlewareModel() *metamodel.Model {
	b := mwmeta.NewBuilder("CVM", Domain)
	b.UILayer("UCI")
	b.SynthesisLayer("SE", LTSName)
	b.ControllerLayer("UCM").
		// Case 1: session control commands map directly to broker calls.
		PassthroughAction("sessionControl",
			"createSession,closeSession,addParticipant,removeParticipant,closeStream,reconfigureStream",
			"",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Action("attachment", "sendAttachment", "",
			mwmeta.StepSpec{Op: "sendData", Target: "{target}", Args: map[string]string{
				"session": "{session}", "bytes": "{sizeKB}",
			}}).
		// Asynchronous recovery: reconfigure a failed stream to the safe
		// audio profile.
		Action("recover", "recoverStream", "",
			mwmeta.StepSpec{Op: "reconfigureStream", Target: "{target}", Args: map[string]string{
				"session": "{session}", "media": "audio", "bandwidth": "32",
			}}).
		// Case 2: media connection establishment goes through dynamic
		// intent-model generation over the comm procedures.
		Class("openStream", "comm.connect").
		// Classification: under low memory, prefer dynamic generation for
		// everything that has a command class (paper §VI).
		Policy(mwmeta.PolicySpec{
			Name: "lowMemory", Priority: 10, Condition: "memoryLow",
			Effects: map[string]string{"case": "intent"},
		}).
		// Selection: secure contexts optimise for reliability.
		Policy(mwmeta.PolicySpec{
			Name: "secureCalls", Priority: 5, Condition: "securityLevel >= 2",
			Effects: map[string]string{"optimize": "reliability"},
		}).
		// Events the UCM forwards up to the SE for model-level recovery.
		EventAction("fwdStreamFailed", "streamFailed", "", true, "").
		Done().
		BrokerLayer("NCB").
		// The NCB realises every call by the equivalent service operation
		// — an exact copy of the original handcrafted broker (§VII-A).
		PassthroughAction("service", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "commService")
	return b.Model()
}

// CVM is the communication virtual machine: an MD-DSM platform wired to a
// simulated communication service.
type CVM struct {
	Platform *runtime.Platform
	Service  *comm.Service
	Clock    simtime.Clock
}

// Option customises CVM construction.
type Option func(*buildOptions)

type buildOptions struct {
	obs        *obs.Obs
	injector   *fault.Injector
	resilience fault.Resilience
	runtime    []runtime.Option
}

// WithObs instruments every layer of the CVM with the given observability
// bundle (tracing + metrics).
func WithObs(o *obs.Obs) Option {
	return func(b *buildOptions) { b.obs = o }
}

// WithFault arms the CVM's fault points with the given injector.
func WithFault(in *fault.Injector) Option {
	return func(b *buildOptions) { b.injector = in }
}

// WithResilience configures retry, step timeouts, and circuit-breaking
// across the CVM's layers.
func WithResilience(r fault.Resilience) Option {
	return func(b *buildOptions) { b.resilience = r }
}

// WithRuntime forwards platform-level runtime options (pump sharding,
// queue capacity, drain timeout, ...) to the underlying engine.
func WithRuntime(opts ...runtime.Option) Option {
	return func(b *buildOptions) { b.runtime = append(b.runtime, opts...) }
}

// New builds a CVM on a virtual clock. Events from the communication
// service are delivered synchronously into the NCB so tests and scenarios
// are deterministic.
func New(opts ...Option) (*CVM, error) {
	clock := simtime.NewVirtual()
	return NewWithClock(clock, opts...)
}

// NewWithClock builds a CVM on the supplied clock.
func NewWithClock(clock simtime.Clock, opts ...Option) (*CVM, error) {
	vm, def, bo := assemble(clock, opts)
	p, err := core.Build(def, bo.runtime...)
	if err != nil {
		return nil, fmt.Errorf("cvm: %w", err)
	}
	vm.Platform = p
	return vm, nil
}

// Restoring a CVM from a runtime.Checkpoint snapshot goes through the
// bundle registry: domains.Restore("cml", snapshot, cfg) — the single
// registry-driven restore path that replaced the per-domain copies.

// assemble wires the CVM shell (clock + simulated service) and the MD-DSM
// definition that Build and Restore share.
func assemble(clock simtime.Clock, opts []Option) (*CVM, core.Definition, *buildOptions) {
	var bo buildOptions
	for _, o := range opts {
		o(&bo)
	}
	vm := &CVM{Clock: clock}
	vm.Service = comm.NewService(clock, func(e comm.Event) {
		if vm.Platform != nil {
			_ = vm.Platform.DeliverEvent(e.Broker())
		}
	})
	def := core.Definition{
		Name:       "cvm",
		DSML:       Metamodel(),
		Middleware: MiddlewareModel(),
		DSK: core.DSK{
			Taxonomy:   Taxonomy(),
			Procedures: Procedures(),
			LTSes:      map[string]*lts.LTS{LTSName: SynthesisLTS()},
			Adapters:   map[string]broker.Adapter{"commService": NewAdapter(vm.Service)},
		},
		Clock:      clock,
		Obs:        bo.obs,
		Injector:   bo.injector,
		Resilience: bo.resilience,
	}
	return vm, def, &bo
}

// NCBModel authors a broker-only middleware model: the NCB layer alone,
// configured as an exact copy of the handcrafted broker. The §VII-A
// experiments drive this platform and the handcrafted baseline with the
// same call sequences and compare the resource traces.
func NCBModel() *metamodel.Model {
	b := mwmeta.NewBuilder("NCB-standalone", Domain)
	b.BrokerLayer("NCB").
		PassthroughAction("service", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		// In standalone mode the broker recovers failed streams itself by
		// reconfiguring to the safe audio profile.
		EventAction("recoverOnFail", "streamFailed", "", false,
			mwmeta.StepSpec{Op: "reconfigureStream", Target: "stream:{stream}",
				Args: map[string]string{
					"session": "{session}", "media": "audio", "bandwidth": "32",
				}}).
		Bind("*", "commService")
	return b.Model()
}

// StandaloneNCB is the model-based Broker layer wired to its own service.
type StandaloneNCB struct {
	Platform *runtime.Platform
	Service  *comm.Service
	Clock    *simtime.VirtualClock
}

// NewStandaloneNCB builds the model-based NCB over a fresh simulated
// service. Service events feed back into the broker synchronously.
func NewStandaloneNCB() (*StandaloneNCB, error) {
	clock := simtime.NewVirtual()
	n := &StandaloneNCB{Clock: clock}
	n.Service = comm.NewService(clock, func(e comm.Event) {
		if n.Platform != nil {
			_ = n.Platform.DeliverEvent(e.Broker())
		}
	})
	p, err := runtime.Build(NCBModel(), runtime.Deps{
		Adapters: map[string]broker.Adapter{"commService": NewAdapter(n.Service)},
		Clock:    clock,
	})
	if err != nil {
		return nil, fmt.Errorf("standalone ncb: %w", err)
	}
	n.Platform = p
	return n, nil
}
