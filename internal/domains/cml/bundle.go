package cml

import (
	"sync"

	"github.com/mddsm/mddsm/internal/domains"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/simtime"
)

// sharedDSML memoises the CML metamodel so every instance provisioned
// through the bundle registry shares one *Metamodel — and with it the
// lazily compiled conformance validator, instead of recompiling per
// tenant.
var sharedDSML = sync.OnceValue(Metamodel)

func init() {
	domains.Register(domains.Bundle{
		Name: "cml",
		Doc:  "communication platform (CVM): sessions, streams and attachments over a simulated comm service",
		Assemble: func(cfg domains.Config) (*domains.Instance, error) {
			vm, def, _ := assemble(simtime.NewVirtual(), optionsFrom(cfg))
			def.DSML = sharedDSML()
			return domains.NewInstance(def,
				func() string { return vm.Service.Trace().String() },
				func(p *runtime.Platform, _ bool) { vm.Platform = p },
			), nil
		},
	})
}

// optionsFrom maps a bundle config onto this package's option surface
// (the zero Resilience disables itself, so it passes through unguarded).
func optionsFrom(cfg domains.Config) []Option {
	opts := []Option{WithResilience(cfg.Resilience)}
	if cfg.Obs != nil {
		opts = append(opts, WithObs(cfg.Obs))
	}
	if cfg.Injector != nil {
		opts = append(opts, WithFault(cfg.Injector))
	}
	return opts
}
