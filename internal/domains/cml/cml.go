// Package cml implements the Communication Modeling Language and the
// Communication Virtual Machine (CVM) on top of the MD-DSM core (paper
// §IV-A). CML models describe user-to-user communication scenarios —
// sessions, participants, media streams and attachments — and the CVM
// enacts them through the orchestrated use of the simulated communication
// services in internal/resources/comm.
//
// The package supplies every DSK artifact for the communication domain:
// the CML metamodel, the synthesis LTS, the classifier taxonomy and
// procedure repository, the resource adapter, and the CVM middleware model
// (layers UCI, SE, UCM, NCB as in Fig. 3).
package cml

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
)

// MetamodelName identifies the CML metamodel.
const MetamodelName = "cml"

// Metamodel builds the CML metamodel. CML distinguishes control aspects
// (Session, participants) from data aspects (Stream, Attachment), echoing
// the control/data schema split of the original language.
func Metamodel() *metamodel.Metamodel {
	m := metamodel.New(MetamodelName)
	m.MustAddEnum(&metamodel.Enum{Name: "Media", Literals: []string{"audio", "video", "chat"}})
	m.MustAddClass(&metamodel.Class{Name: "Person",
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			{Name: "role", Kind: metamodel.KindString, Default: "participant"},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: "Session",
		Attributes: []metamodel.Attribute{
			{Name: "topic", Kind: metamodel.KindString, Default: ""},
		},
		References: []metamodel.Reference{
			{Name: "participants", Target: "Person", Many: true},
			{Name: "streams", Target: "Stream", Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: "Stream",
		Attributes: []metamodel.Attribute{
			{Name: "media", Kind: metamodel.KindEnum, EnumType: "Media", Required: true},
			{Name: "bandwidth", Kind: metamodel.KindFloat, Default: 64.0},
			{Name: "session", Kind: metamodel.KindString, Required: true},
		},
		References: []metamodel.Reference{
			{Name: "attachments", Target: "Attachment", Containment: true, Many: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: "Attachment",
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
			{Name: "sizeKB", Kind: metamodel.KindFloat, Default: 1.0},
			{Name: "stream", Kind: metamodel.KindString, Required: true},
			{Name: "session", Kind: metamodel.KindString, Required: true},
		},
	})
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("cml metamodel: %v", err))
	}
	return m
}

// LTSName is the synthesis-semantics name referenced by the CVM middleware
// model.
const LTSName = "cml-synthesis"

// SynthesisLTS encodes the CML synthesis semantics: how differences between
// the running and the submitted communication model translate to control
// commands for the UCM (Controller) layer.
//
// Note the Stream/Attachment objects carry their owning session/stream IDs
// as attributes — CML instance models are flat in that respect, which keeps
// the LTS templates self-contained.
func SynthesisLTS() *lts.LTS {
	l := lts.New(LTSName, "run")
	l.On("run", "add-object:Session", "", "run",
		lts.CommandTemplate{Op: "createSession", Target: "session:{id}"})
	l.On("run", "remove-object:Session", "", "run",
		lts.CommandTemplate{Op: "closeSession", Target: "session:{id}"})
	l.On("run", "add-ref:Session.participants", "", "run",
		lts.CommandTemplate{Op: "addParticipant", Target: "session:{id}",
			Args: map[string]string{"who": "{target}"}})
	l.On("run", "remove-ref:Session.participants", "", "run",
		lts.CommandTemplate{Op: "removeParticipant", Target: "session:{id}",
			Args: map[string]string{"who": "{target}"}})
	l.On("run", "add-object:Stream", "", "run",
		lts.CommandTemplate{Op: "openStream", Target: "stream:{id}",
			Args: map[string]string{
				"media":     "{media}",
				"bandwidth": "{bandwidth}",
				"session":   "{session}",
			}})
	l.On("run", "remove-object:Stream", "", "run",
		lts.CommandTemplate{Op: "closeStream", Target: "stream:{id}",
			Args: map[string]string{"session": "{session}"}})
	l.On("run", "set-attr:Stream.media", "", "run",
		lts.CommandTemplate{Op: "reconfigureStream", Target: "stream:{id}",
			Args: map[string]string{"media": "{new}", "session": "{session}"}})
	l.On("run", "set-attr:Stream.bandwidth", "", "run",
		lts.CommandTemplate{Op: "reconfigureStream", Target: "stream:{id}",
			Args: map[string]string{"bandwidth": "{new}", "session": "{session}"}})
	l.On("run", "add-object:Attachment", "", "run",
		lts.CommandTemplate{Op: "sendAttachment", Target: "stream:{stream}",
			Args: map[string]string{
				"name":    "{name}",
				"sizeKB":  "{sizeKB}",
				"session": "{session}",
			}})
	// Asynchronous recovery: a failed stream is reconfigured to a safe
	// audio profile, mirroring the CVM's fault-tolerance behaviour.
	l.On("run", "event:streamFailed", "", "run",
		lts.CommandTemplate{Op: "recoverStream", Target: "stream:{stream}",
			Args: map[string]string{"session": "{session}"}})
	return l
}
