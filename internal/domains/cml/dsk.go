package cml

import (
	"fmt"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/dsc"
	"github.com/mddsm/mddsm/internal/eu"
	"github.com/mddsm/mddsm/internal/registry"
	"github.com/mddsm/mddsm/internal/resources/comm"
	"github.com/mddsm/mddsm/internal/script"
)

// Domain is the classifier-domain name for communication.
const Domain = "comm"

// Taxonomy builds the communication classifier hierarchy (DSCs, §V-B):
// operations for session control, media connection establishment with
// transport specialisations, codec negotiation and authentication, plus
// data classifiers naming the session profile data.
func Taxonomy() *dsc.Taxonomy {
	tx := dsc.NewTaxonomy()
	add := func(id, parent string, cat dsc.Category, desc string) {
		tx.MustAdd(&dsc.DSC{ID: id, Name: id, Domain: Domain, Category: cat,
			Parent: parent, Description: desc})
	}
	add("comm.connect", "", dsc.Operation, "establish a media connection")
	add("comm.connect.secure", "comm.connect", dsc.Operation, "establish an encrypted media connection")
	add("comm.transport", "", dsc.Operation, "move media over a transport")
	add("comm.transport.datagram", "comm.transport", dsc.Operation, "best-effort datagram transport")
	add("comm.transport.reliable", "comm.transport", dsc.Operation, "reliable stream transport")
	add("comm.codec", "", dsc.Operation, "negotiate and apply a codec")
	add("comm.auth", "", dsc.Operation, "authenticate the parties")
	add("comm.data.profile", "", dsc.Data, "session profile data")
	add("comm.data.profile.contact", "comm.data.profile", dsc.Data, "contact entries")
	if err := tx.Validate(); err != nil {
		panic(fmt.Sprintf("cml taxonomy: %v", err))
	}
	return tx
}

// Procedures builds the communication procedure repository entries. The
// goal classifier comm.connect has competing realisations whose
// dependencies (transport, codec, auth) also have alternatives, giving the
// intent-model generator a real configuration space.
func Procedures() []*registry.Procedure {
	return []*registry.Procedure{
		{
			ID: "connectBasic", Name: "basic media connect", Domain: Domain,
			ClassifiedBy: "comm.connect",
			Dependencies: []string{"comm.transport", "comm.codec"},
			Cost:         8, Reliability: 0.97,
			Unit: eu.NewUnit("connectBasic",
				eu.Call("comm.transport"),
				eu.Call("comm.codec"),
				eu.Invoke("openStream", "{target}",
					"media", "media", "bandwidth", "bandwidth", "session", "session"),
			),
		},
		{
			ID: "connectSecure", Name: "authenticated media connect", Domain: Domain,
			ClassifiedBy: "comm.connect.secure",
			Dependencies: []string{"comm.auth", "comm.transport.reliable", "comm.codec"},
			Cost:         20, Reliability: 0.995,
			Tags: map[string]string{"security": "high"},
			Unit: eu.NewUnit("connectSecure",
				eu.Call("comm.auth"),
				eu.Call("comm.transport.reliable"),
				eu.Call("comm.codec"),
				eu.Invoke("openStream", "{target}",
					"media", "media", "bandwidth", "bandwidth", "session", "session"),
			),
		},
		{
			ID: "udpTransport", Name: "datagram transport", Domain: Domain,
			ClassifiedBy: "comm.transport.datagram",
			Cost:         2, Reliability: 0.90,
			Tags: map[string]string{"transport": "udp"},
			Unit: eu.NewUnit("udpTransport",
				eu.Set("transportReady", "true")),
		},
		{
			ID: "tcpTransport", Name: "reliable transport", Domain: Domain,
			ClassifiedBy: "comm.transport.reliable",
			Cost:         6, Reliability: 0.995,
			Tags: map[string]string{"transport": "tcp"},
			Unit: eu.NewUnit("tcpTransport",
				eu.Set("transportReady", "true")),
		},
		{
			ID: "fastCodec", Name: "low-latency codec", Domain: Domain,
			ClassifiedBy: "comm.codec",
			Cost:         3, Reliability: 0.95,
			Tags: map[string]string{"quality": "speed"},
			Unit: eu.NewUnit("fastCodec",
				eu.Set("codec", "'opus-fast'")),
		},
		{
			ID: "hqCodec", Name: "high-quality codec", Domain: Domain,
			ClassifiedBy: "comm.codec",
			Cost:         9, Reliability: 0.99,
			Tags: map[string]string{"quality": "fidelity"},
			Unit: eu.NewUnit("hqCodec",
				eu.Set("codec", "'opus-hq'")),
		},
		{
			ID: "pskAuth", Name: "pre-shared-key auth", Domain: Domain,
			ClassifiedBy: "comm.auth",
			Cost:         4, Reliability: 0.999,
			Unit: eu.NewUnit("pskAuth",
				eu.Set("authenticated", "true")),
		},
	}
}

// Adapter bridges broker resource commands to the simulated communication
// service. It is the NCB's view of the heterogeneous service substrate.
type Adapter struct {
	svc *comm.Service
}

var _ broker.Adapter = (*Adapter)(nil)

// NewAdapter wraps a communication service.
func NewAdapter(svc *comm.Service) *Adapter { return &Adapter{svc: svc} }

// stripPrefix removes "session:"/"stream:" style prefixes from targets.
func stripPrefix(target string) string {
	for i := 0; i < len(target); i++ {
		if target[i] == ':' {
			return target[i+1:]
		}
	}
	return target
}

// Execute implements broker.Adapter, routing by operation name.
func (a *Adapter) Execute(cmd script.Command) error {
	id := stripPrefix(cmd.Target)
	switch cmd.Op {
	case "createSession":
		return a.svc.CreateSession(id)
	case "closeSession":
		return a.svc.CloseSession(id)
	case "addParticipant":
		return a.svc.AddParticipant(id, cmd.StringArg("who"))
	case "removeParticipant":
		return a.svc.RemoveParticipant(id, cmd.StringArg("who"))
	case "openStream":
		return a.svc.OpenStream(cmd.StringArg("session"), id,
			comm.MediaType(cmd.StringArg("media")), cmd.NumArg("bandwidth"))
	case "closeStream":
		return a.svc.CloseStream(cmd.StringArg("session"), id)
	case "reconfigureStream":
		return a.reconfigure(cmd, id)
	case "sendData":
		return a.svc.SendData(cmd.StringArg("session"), id, cmd.NumArg("bytes"))
	default:
		return fmt.Errorf("cml adapter: unknown op %q", cmd.Op)
	}
}

// reconfigure fills in the half of (media, bandwidth) the caller omitted
// from the stream's current configuration — the NCB hides that service
// detail from the upper layers.
func (a *Adapter) reconfigure(cmd script.Command, streamID string) error {
	sessionID := cmd.StringArg("session")
	media := comm.MediaType(cmd.StringArg("media"))
	bandwidth := cmd.NumArg("bandwidth")
	if media == "" || bandwidth == 0 {
		sess := a.svc.Session(sessionID)
		if sess == nil {
			return fmt.Errorf("cml adapter: reconfigure: unknown session %q", sessionID)
		}
		st := sess.Stream(streamID)
		if st == nil {
			return fmt.Errorf("cml adapter: reconfigure: unknown stream %q", streamID)
		}
		if media == "" {
			media = st.Media
		}
		if bandwidth == 0 {
			bandwidth = st.Bandwidth
		}
	}
	return a.svc.ReconfigureStream(sessionID, streamID, media, bandwidth)
}
