package cml

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mddsm/mddsm/internal/resources/comm"
)

// TestModelServiceConsistencyProperty is the models@runtime invariant: after
// any sequence of valid CML model edits, the communication service's state
// mirrors the runtime model — every modelled session exists with exactly
// the modelled participants and streams (media and bandwidth included),
// and nothing else.
func TestModelServiceConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vm, err := New()
		if err != nil {
			t.Log(err)
			return false
		}
		people := []string{"p1", "p2", "p3"}
		media := []string{"audio", "video", "chat"}

		for round := 0; round < 6; round++ {
			edit := vm.Platform.UI.EditDraft()
			for _, p := range people {
				if edit.Object(p) == nil {
					edit.MustAdd(p, "Person").SetAttr("name", p)
				}
			}
			switch op := r.Intn(5); op {
			case 0: // add a session
				id := fmt.Sprintf("s%d", r.Intn(3))
				if edit.Object(id) == nil {
					edit.MustAdd(id, "Session")
				}
			case 1: // add a stream to a random session
				sessions := edit.Model().ObjectsOf("Session")
				if len(sessions) > 0 {
					sess := sessions[r.Intn(len(sessions))]
					id := fmt.Sprintf("st%d", r.Intn(4))
					if edit.Object(id) == nil {
						edit.MustAdd(id, "Stream").
							SetAttr("media", media[r.Intn(3)]).
							SetAttr("bandwidth", float64(8*(1+r.Intn(8)))).
							SetAttr("session", sess.ID)
						sess.AddRef("streams", id)
					}
				}
			case 2: // toggle a participant on a random session
				sessions := edit.Model().ObjectsOf("Session")
				if len(sessions) > 0 {
					sess := sessions[r.Intn(len(sessions))]
					p := people[r.Intn(len(people))]
					has := false
					for _, ref := range sess.Refs("participants") {
						if ref == p {
							has = true
						}
					}
					if has {
						sess.RemoveRef("participants", p)
					} else {
						sess.AddRef("participants", p)
					}
				}
			case 3: // reconfigure a random stream
				streams := edit.Model().ObjectsOf("Stream")
				if len(streams) > 0 {
					st := streams[r.Intn(len(streams))]
					st.SetAttr("media", media[r.Intn(3)])
				}
			case 4: // remove a random session (and its streams)
				sessions := edit.Model().ObjectsOf("Session")
				if len(sessions) > 0 {
					sess := sessions[r.Intn(len(sessions))]
					for _, stID := range sess.Refs("streams") {
						if err := edit.Remove(stID); err != nil {
							t.Logf("seed %d: remove stream: %v", seed, err)
							return false
						}
					}
					if err := edit.Remove(sess.ID); err != nil {
						t.Logf("seed %d: remove session: %v", seed, err)
						return false
					}
				}
			}
			if _, err := edit.Submit(); err != nil {
				t.Logf("seed %d round %d: submit: %v", seed, round, err)
				return false
			}
			if !consistent(t, vm, seed, round) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// consistent checks service state against the runtime model.
func consistent(t *testing.T, vm *CVM, seed int64, round int) bool {
	model := vm.Platform.UI.RuntimeModel()
	sessions := model.ObjectsOf("Session")
	if got := len(vm.Service.SessionIDs()); got != len(sessions) {
		t.Logf("seed %d round %d: %d service sessions vs %d modelled",
			seed, round, got, len(sessions))
		return false
	}
	for _, sess := range sessions {
		svc := vm.Service.Session(sess.ID)
		if svc == nil {
			t.Logf("seed %d round %d: session %s missing", seed, round, sess.ID)
			return false
		}
		if len(svc.Participants()) != len(sess.Refs("participants")) {
			t.Logf("seed %d round %d: session %s participants %v vs %v",
				seed, round, sess.ID, svc.Participants(), sess.Refs("participants"))
			return false
		}
		if len(svc.Streams()) != len(sess.Refs("streams")) {
			t.Logf("seed %d round %d: session %s streams %v vs %v",
				seed, round, sess.ID, svc.Streams(), sess.Refs("streams"))
			return false
		}
		for _, stID := range sess.Refs("streams") {
			st := svc.Stream(stID)
			mo := model.Get(stID)
			if st == nil || mo == nil {
				t.Logf("seed %d round %d: stream %s missing", seed, round, stID)
				return false
			}
			if string(st.Media) != mo.StringAttr("media") ||
				st.Bandwidth != mo.FloatAttr("bandwidth") {
				t.Logf("seed %d round %d: stream %s %s/%v vs %s/%v",
					seed, round, stID, st.Media, st.Bandwidth,
					mo.StringAttr("media"), mo.FloatAttr("bandwidth"))
				return false
			}
		}
	}
	_ = comm.Audio // keep the import for documentation symmetry
	return true
}
