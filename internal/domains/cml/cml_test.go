package cml

import (
	"strings"
	"testing"
	"time"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/resources/comm"
	"github.com/mddsm/mddsm/internal/script"
	"github.com/mddsm/mddsm/internal/simtime"
)

func TestDefinitionValidates(t *testing.T) {
	def := core.Definition{
		Name:       "cvm",
		DSML:       Metamodel(),
		Middleware: MiddlewareModel(),
		DSK: core.DSK{
			Taxonomy:   Taxonomy(),
			Procedures: Procedures(),
			LTSes:      map[string]*lts.LTS{LTSName: SynthesisLTS()},
		},
	}
	if err := def.Validate(); err != nil {
		t.Fatalf("CVM definition must validate: %v", err)
	}
}

func TestMiddlewareModelConforms(t *testing.T) {
	if err := MiddlewareModel().Clone().Validate(mwmeta.MM()); err != nil {
		t.Fatal(err)
	}
	if err := NCBModel().Clone().Validate(mwmeta.MM()); err != nil {
		t.Fatal(err)
	}
}

func buildCVM(t *testing.T) *CVM {
	t.Helper()
	vm, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// sessionDraft builds the canonical two-party audio session model.
func sessionDraft(vm *CVM, t *testing.T) *metamodel.Model {
	t.Helper()
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("alice", "Person").SetAttr("name", "Alice")
	d.MustAdd("bob", "Person").SetAttr("name", "Bob")
	d.MustAdd("s1", "Session").
		SetRef("participants", "alice", "bob").
		SetRef("streams", "a1")
	d.MustAdd("a1", "Stream").
		SetAttr("media", "audio").
		SetAttr("bandwidth", 64).
		SetAttr("session", "s1")
	return d.Model()
}

func TestCVMRunsCommunicationModel(t *testing.T) {
	vm := buildCVM(t)
	if _, err := vm.Platform.SubmitModel(sessionDraft(vm, t)); err != nil {
		t.Fatal(err)
	}
	trace := vm.Service.Trace().String()
	for _, want := range []string{
		"createSession session:s1",
		`addParticipant session:s1 who="alice"`,
		`addParticipant session:s1 who="bob"`,
		`openStream stream:a1 bandwidth=64 media="audio" session="s1"`,
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("missing %q in trace:\n%s", want, trace)
		}
	}
	sess := vm.Service.Session("s1")
	if sess == nil || len(sess.Participants()) != 2 || len(sess.Streams()) != 1 {
		t.Fatalf("service state: %+v", sess)
	}
	// openStream went through Case 2 (intent generation).
	if vm.Platform.Controller.Stats().Case2 == 0 {
		t.Error("openStream should have used intent generation")
	}
}

func TestCVMModelUpdateReconfigures(t *testing.T) {
	vm := buildCVM(t)
	if _, err := vm.Platform.SubmitModel(sessionDraft(vm, t)); err != nil {
		t.Fatal(err)
	}
	edit := vm.Platform.UI.EditDraft()
	edit.Object("a1").SetAttr("media", "video")
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	st := vm.Service.Session("s1").Stream("a1")
	if st.Media != comm.Video {
		t.Errorf("media after update: %s", st.Media)
	}
	if st.Bandwidth != 64 {
		t.Errorf("bandwidth must be preserved: %v", st.Bandwidth)
	}
}

func TestCVMAttachmentFlows(t *testing.T) {
	vm := buildCVM(t)
	if _, err := vm.Platform.SubmitModel(sessionDraft(vm, t)); err != nil {
		t.Fatal(err)
	}
	edit := vm.Platform.UI.EditDraft()
	edit.MustAdd("att1", "Attachment").
		SetAttr("name", "slides.pdf").
		SetAttr("sizeKB", 300).
		SetAttr("stream", "a1").
		SetAttr("session", "s1")
	edit.Object("a1").AddRef("attachments", "att1")
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vm.Service.Trace().String(), `sendData stream:a1 bytes=300`) {
		t.Errorf("trace:\n%s", vm.Service.Trace())
	}
}

func TestCVMStreamFailureRecovery(t *testing.T) {
	vm := buildCVM(t)
	if _, err := vm.Platform.SubmitModel(sessionDraft(vm, t)); err != nil {
		t.Fatal(err)
	}
	// Inject a failure: service -> NCB -> UCM(forward) -> SE event rule ->
	// recoverStream script -> UCM recover action -> safe audio profile.
	if err := vm.Service.InjectStreamFailure("s1", "a1"); err != nil {
		t.Fatal(err)
	}
	st := vm.Service.Session("s1").Stream("a1")
	if !st.Up {
		t.Fatal("stream must be recovered")
	}
	if st.Media != comm.Audio || st.Bandwidth != 32 {
		t.Errorf("safe profile expected, got %s/%v", st.Media, st.Bandwidth)
	}
}

func TestCVMSecurePolicySelectsReliableConfiguration(t *testing.T) {
	vm := buildCVM(t)
	// With securityLevel >= 2 the UCM optimises for reliability, which
	// picks the reliable transport and high-quality codec chain.
	vm.Platform.Controller.Context().Set("securityLevel", 2)
	if _, err := vm.Platform.SubmitModel(sessionDraft(vm, t)); err != nil {
		t.Fatal(err)
	}
	if vm.Platform.Controller.Stats().Case2 == 0 {
		t.Fatal("expected intent generation")
	}
	// The reliability-optimal connect procedure charges more virtual time
	// (connectBasic chain costs 8+2+3=13ms; reliability picks
	// connectBasic with tcp+hq = 8+6+9=23ms at minimum).
	// Check via the virtual clock: total > service latencies alone.
	_ = time.Millisecond // (cost assertions are covered in experiments)
}

func TestStandaloneNCBRunsScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			n, err := NewStandaloneNCB()
			if err != nil {
				t.Fatal(err)
			}
			if err := RunScenario(sc, n.Platform.Broker, n.Service); err != nil {
				t.Fatalf("scenario %s: %v", sc.Name, err)
			}
			if n.Service.Trace().Len() == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

func TestScenarioSuiteShape(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 8 {
		t.Fatalf("the paper's suite has 8 scenarios, got %d", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario %s", sc.Name)
		}
		seen[sc.Name] = true
		if len(sc.Steps) < 4 {
			t.Errorf("scenario %s too small", sc.Name)
		}
	}
}

func TestAdapterErrors(t *testing.T) {
	svc := comm.NewService(nil, nil)
	a := NewAdapter(svc)
	if err := a.Execute(scriptCmd("unknownOp", "x")); err == nil {
		t.Error("unknown op must fail")
	}
	if err := a.Execute(scriptCmd("reconfigureStream", "stream:ghost", "session", "nope")); err == nil {
		t.Error("reconfigure on unknown session must fail")
	}
	if err := a.Execute(scriptCmd("createSession", "session:s1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Execute(scriptCmd("reconfigureStream", "stream:ghost", "session", "s1")); err == nil {
		t.Error("reconfigure on unknown stream must fail")
	}
}

func TestStripPrefix(t *testing.T) {
	if stripPrefix("session:s1") != "s1" || stripPrefix("bare") != "bare" {
		t.Error("stripPrefix")
	}
}

// scriptCmd builds a command for adapter tests.
func scriptCmd(op, target string, kv ...any) script.Command {
	c := script.NewCommand(op, target)
	for i := 0; i+1 < len(kv); i += 2 {
		c = c.WithArg(kv[i].(string), kv[i+1])
	}
	return c
}

func TestWovenConcernsRunOnCVM(t *testing.T) {
	// §IX future work: different concerns of one application as separate
	// models, woven at submission. The control concern declares the
	// session and participants; the media concern attaches the streams.
	vm := buildCVM(t)
	control := metamodel.NewModel(MetamodelName)
	control.NewObject("alice", "Person").SetAttr("name", "Alice")
	control.NewObject("bob", "Person").SetAttr("name", "Bob")
	control.NewObject("s1", "Session").SetRef("participants", "alice", "bob")

	media := metamodel.NewModel(MetamodelName)
	media.NewObject("s1", "Session").SetRef("streams", "a1")
	media.NewObject("a1", "Stream").
		SetAttr("media", "audio").SetAttr("session", "s1")

	if _, err := vm.Platform.UI.SubmitWoven(control, media); err != nil {
		t.Fatal(err)
	}
	sess := vm.Service.Session("s1")
	if sess == nil || len(sess.Participants()) != 2 || len(sess.Streams()) != 1 {
		t.Fatalf("woven session state: %+v", sess)
	}
}

func TestCoverageComplete(t *testing.T) {
	def := core.Definition{
		Name: "cvm", DSML: Metamodel(), Middleware: MiddlewareModel(),
		DSK: core.DSK{
			Taxonomy: Taxonomy(), Procedures: Procedures(),
			LTSes: map[string]*lts.LTS{LTSName: SynthesisLTS()},
		},
	}
	cov, err := core.AnalyzeCoverage(def)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Fatalf("CVM coverage incomplete: %v", cov.UnroutableOps)
	}
	// openStream is the Case-2 path; session control is Case 1.
	if cov.RoutedOps["openStream"] != "intent" {
		t.Errorf("openStream: %q", cov.RoutedOps["openStream"])
	}
	if cov.RoutedOps["createSession"] != "action" {
		t.Errorf("createSession: %q", cov.RoutedOps["createSession"])
	}
}

func TestMiddlewareModelJSONRoundTripRebuildsWorkingPlatform(t *testing.T) {
	// The middleware model is data: serialise it, reload it, and rebuild a
	// working CVM from the JSON — the full EMF-replacement round trip.
	data, err := metamodel.MarshalModel(MiddlewareModel())
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := metamodel.UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	vm := &CVM{Clock: simtime.NewVirtual()}
	vm.Service = comm.NewService(vm.Clock, func(e comm.Event) {
		if vm.Platform != nil {
			_ = vm.Platform.DeliverEvent(e.Broker())
		}
	})
	p, err := core.Build(core.Definition{
		Name:       "cvm-from-json",
		DSML:       Metamodel(),
		Middleware: reloaded,
		DSK: core.DSK{
			Taxonomy:   Taxonomy(),
			Procedures: Procedures(),
			LTSes:      map[string]*lts.LTS{LTSName: SynthesisLTS()},
			Adapters:   map[string]broker.Adapter{"commService": NewAdapter(vm.Service)},
		},
		Clock: vm.Clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Platform = p
	if _, err := vm.Platform.SubmitModel(sessionDraft(vm, t)); err != nil {
		t.Fatal(err)
	}
	if vm.Service.Session("s1") == nil {
		t.Fatal("platform rebuilt from JSON must run the session model")
	}
	// Failure recovery still works through the reloaded configuration.
	if err := vm.Service.InjectStreamFailure("s1", "a1"); err != nil {
		t.Fatal(err)
	}
	if st := vm.Service.Session("s1").Stream("a1"); !st.Up {
		t.Fatal("recovery through reloaded middleware model")
	}
}

func TestServiceFailureRollsBackSubmissionAndRetryWorks(t *testing.T) {
	// End-to-end resilience: the service rejects the first openStream, the
	// whole submission rolls back (runtime model unchanged), and a retry
	// succeeds once the service recovers.
	vm := buildCVM(t)
	vm.Service.FailNext("openStream")

	_, err := vm.Platform.SubmitModel(sessionDraft(vm, t))
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("want injected failure, got %v", err)
	}
	if vm.Platform.UI.RuntimeModel().Len() != 0 {
		t.Fatal("failed submission must not commit the runtime model")
	}
	// NOTE: the service itself may have partially executed (createSession
	// ran before openStream failed) — the middleware's contract is model
	// consistency, so the retry must reconcile. Clear the partial session
	// first, as an operator would.
	for _, id := range vm.Service.SessionIDs() {
		if err := vm.Service.CloseSession(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := vm.Platform.SubmitModel(sessionDraft(vm, t)); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if vm.Service.Session("s1") == nil {
		t.Fatal("retry must establish the session")
	}
}
