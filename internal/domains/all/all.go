// Package all registers every built-in domain bundle with the domains
// registry. Import it for the side effect:
//
//	import _ "github.com/mddsm/mddsm/internal/domains/all"
package all

import (
	_ "github.com/mddsm/mddsm/internal/domains/cml"
	_ "github.com/mddsm/mddsm/internal/domains/csense"
	_ "github.com/mddsm/mddsm/internal/domains/mgrid"
	_ "github.com/mddsm/mddsm/internal/domains/smartspace"
)
