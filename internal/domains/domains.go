// Package domains is the registry of installable domain bundles — the
// paper's domain-specific platforms (§IV) packaged as named, uniformly
// constructible units. Each concrete domain (cml, mgrid, smartspace,
// csense) registers a Bundle in its init, so hosts that provision
// platforms dynamically — mddsm-serve's tenant table, the CLIs — resolve
// them by name instead of hard-coding one switch per domain.
//
// The package also unifies the checkpoint/restore entry points: where
// cml.Restore and mgrid.Restore used to copy-paste the
// assemble→core.Restore→reseed dance, domains.Restore(bundle, snapshot,
// cfg) is the single registry-driven path (domains.New is its
// construction twin). Import github.com/mddsm/mddsm/internal/domains/all
// for the side effect of registering every built-in bundle.
package domains

import (
	"fmt"
	"sort"
	"sync"

	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/fault"
	"github.com/mddsm/mddsm/internal/obs"
	"github.com/mddsm/mddsm/internal/runtime"
)

// Config carries everything a bundle needs to build (or restore) one
// platform instance: the unified runtime tuning profile plus the
// cross-cutting observability, fault-injection and resilience hooks that
// used to be one functional option each per domain package.
type Config struct {
	// Runtime is the platform tuning profile (zero fields mean the
	// runtime defaults; see runtime.Defaults).
	Runtime runtime.Config
	// Obs instruments every layer of the instance (nil disables).
	Obs *obs.Obs
	// Injector arms the instance's fault points (nil disables).
	Injector *fault.Injector
	// Resilience configures retry/timeout/circuit-breaking across the
	// instance's layers (zero disables).
	Resilience fault.Resilience
}

// Instance is one provisioned domain platform plus the simulated shell it
// is wired to (service, plant, hub, fleet — whatever the domain drives).
type Instance struct {
	// Bundle names the bundle this instance came from.
	Bundle string
	// Platform is the live MD-DSM platform (not started; call
	// Platform.Start as after runtime.Build).
	Platform *runtime.Platform
	// Trace renders the instance's resource trace (never nil; bundles
	// without a meaningful trace return "").
	Trace func() string

	// definition is the assembled MD-DSM definition; attach binds the
	// built platform back into the shell's feedback loop.
	definition core.Definition
	attach     func(p *runtime.Platform, restored bool)
}

// Bundle is one registered domain: a name, a one-line description and the
// assembly function producing a fresh shell + definition pair.
type Bundle struct {
	// Name keys the bundle in the registry ("cml", "mgrid", ...).
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Assemble builds a fresh instance shell: Definition populated,
	// Platform left nil (New and Restore fill it through core).
	Assemble func(cfg Config) (*Instance, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Bundle{}
)

// Register installs a bundle; it panics on a duplicate or empty name
// (registration is an init-time programming act, not a runtime input).
func Register(b Bundle) {
	if b.Name == "" || b.Assemble == nil {
		panic("domains: Register needs a name and an Assemble func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("domains: bundle %q registered twice", b.Name))
	}
	registry[b.Name] = b
}

// RegisterIfAbsent installs a bundle unless one with the same name is
// already registered, reporting whether the registration took effect. It
// is the entry point for bundles produced at runtime — synthetic domains
// from internal/domgen register through it so re-generating the same
// deterministic bundle (same spec, same seed) in one process is a no-op
// instead of the panic Register reserves for programming errors.
func RegisterIfAbsent(b Bundle) bool {
	if b.Name == "" || b.Assemble == nil {
		panic("domains: RegisterIfAbsent needs a name and an Assemble func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name]; dup {
		return false
	}
	registry[b.Name] = b
	return true
}

// Lookup resolves a registered bundle by name.
func Lookup(name string) (Bundle, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names lists the registered bundles, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// assemble resolves the bundle and builds its shell, stamping the
// bundle name into the instance.
func assemble(bundle string, cfg Config) (*Instance, error) {
	b, ok := Lookup(bundle)
	if !ok {
		return nil, fmt.Errorf("domains: unknown bundle %q (registered: %v)", bundle, Names())
	}
	inst, err := b.Assemble(cfg)
	if err != nil {
		return nil, fmt.Errorf("domains: assemble %s: %w", bundle, err)
	}
	inst.Bundle = bundle
	if inst.Trace == nil {
		inst.Trace = func() string { return "" }
	}
	return inst, nil
}

// New provisions a fresh platform instance of the named bundle.
func New(bundle string, cfg Config) (*Instance, error) {
	inst, err := assemble(bundle, cfg)
	if err != nil {
		return nil, err
	}
	p, err := core.Build(inst.definition, runtime.WithConfig(cfg.Runtime))
	if err != nil {
		return nil, fmt.Errorf("domains: build %s: %w", bundle, err)
	}
	inst.bind(p, false)
	return inst, nil
}

// Restore rebuilds an instance of the named bundle from a
// runtime.Checkpoint snapshot: the bundle's shell and DSK are assembled
// fresh, the snapshot's middleware model and layer state are reinstated
// through core.Restore, and the shell's feedback loop is re-attached. It
// replaces the per-domain Restore copies (cml.Restore, mgrid.Restore).
// The restored platform is not started.
func Restore(bundle string, snapshot []byte, cfg Config) (*Instance, error) {
	inst, err := assemble(bundle, cfg)
	if err != nil {
		return nil, err
	}
	p, err := core.Restore(inst.definition, snapshot, runtime.WithConfig(cfg.Runtime))
	if err != nil {
		return nil, fmt.Errorf("domains: restore %s: %w", bundle, err)
	}
	inst.bind(p, true)
	return inst, nil
}

// bind installs the built platform into the instance and runs the
// bundle's attach hook (shell feedback wiring, context seeding).
func (inst *Instance) bind(p *runtime.Platform, restored bool) {
	inst.Platform = p
	if inst.attach != nil {
		inst.attach(p, restored)
	}
}

// NewInstance builds the Instance a Bundle.Assemble returns. It lives
// here (rather than exposing the struct fields) so the definition and
// attach hook stay write-once.
func NewInstance(def core.Definition, trace func() string, attach func(p *runtime.Platform, restored bool)) *Instance {
	return &Instance{definition: def, Trace: trace, attach: attach}
}

// Close stops the instance's platform (drain included). It is safe on an
// instance whose platform was never started.
func (inst *Instance) Close() {
	if inst.Platform != nil {
		inst.Platform.Stop()
	}
}
