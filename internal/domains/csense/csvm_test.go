package csense

import (
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/script"
)

func TestDefinitionsValidate(t *testing.T) {
	for _, def := range []core.Definition{
		{
			Name: "provider", DSML: Metamodel(), Middleware: ProviderModel(),
			DSK: core.DSK{LTSes: map[string]*lts.LTS{ProviderLTSName: ProviderLTS()}},
		},
		{
			Name: "device", DSML: Metamodel(), Middleware: DeviceModel(),
			DSK: core.DSK{LTSes: map[string]*lts.LTS{DeviceLTSName: DeviceLTS()}},
		},
	} {
		if err := def.Validate(); err != nil {
			t.Fatalf("%s definition must validate: %v", def.Name, err)
		}
	}
}

func newVM(t *testing.T) *CSVM {
	t.Helper()
	vm, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	sensors := map[string][2]float64{"temp": {10, 30}, "noise": {30, 90}}
	for _, d := range []struct{ id, region string }{
		{"d1", "north"}, {"d2", "north"}, {"d3", "south"}, {"d4", "south"},
	} {
		if err := vm.Fleet.Register(d.id, d.region, sensors); err != nil {
			t.Fatal(err)
		}
	}
	return vm
}

func TestQueryLifecycle(t *testing.T) {
	vm := newVM(t)

	// The user authors a query on the device.
	d := vm.Device.UI.NewDraft()
	d.MustAdd("q1", "Query").
		SetAttr("sensor", "temp").
		SetAttr("region", "north").
		SetAttr("aggregate", "avg")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	if got := vm.Engine.ActiveQueries(); len(got) != 1 || got[0] != "query:device0/q1" {
		t.Fatalf("active queries: %v", got)
	}

	// Rounds run over the fleet and results reach the device.
	results := vm.Engine.Tick()
	if len(results) != 1 {
		t.Fatalf("results: %v", results)
	}
	r := results[0]
	if r.Samples != 2 { // two devices in the north region
		t.Errorf("samples: %d", r.Samples)
	}
	if r.Value < 10 || r.Value > 30 {
		t.Errorf("avg out of range: %v", r.Value)
	}
	if len(vm.Results()) != 1 {
		t.Errorf("delivered results: %v", vm.Results())
	}

	// Cancel: removing the query stops execution.
	edit := vm.Device.UI.EditDraft()
	if err := edit.Remove("q1"); err != nil {
		t.Fatal(err)
	}
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	if got := vm.Engine.ActiveQueries(); len(got) != 0 {
		t.Fatalf("query should be stopped: %v", got)
	}
	if got := vm.Engine.Tick(); len(got) != 0 {
		t.Fatalf("no rounds after stop: %v", got)
	}
}

func TestOnTheFlyQueryChange(t *testing.T) {
	vm := newVM(t)
	d := vm.Device.UI.NewDraft()
	d.MustAdd("q1", "Query").
		SetAttr("sensor", "temp").
		SetAttr("region", "north").
		SetAttr("aggregate", "avg")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	if r := vm.Engine.Tick(); r[0].Samples != 2 {
		t.Fatalf("north samples: %v", r)
	}

	// The CSVM headline feature: change the live query's model on the fly.
	edit := vm.Device.UI.EditDraft()
	edit.Object("q1").SetAttr("region", "")       // widen to the whole fleet
	edit.Object("q1").SetAttr("aggregate", "max") // switch the aggregate
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	results := vm.Engine.Tick()
	if results[0].Samples != 4 {
		t.Fatalf("widened query must sample all devices: %v", results)
	}
	if results[0].Round != 2 {
		t.Errorf("round continuity across updates: %v", results[0].Round)
	}
}

func TestAggregates(t *testing.T) {
	vm := newVM(t)
	d := vm.Device.UI.NewDraft()
	d.MustAdd("qMin", "Query").SetAttr("sensor", "noise").SetAttr("aggregate", "min")
	d.MustAdd("qMax", "Query").SetAttr("sensor", "noise").SetAttr("aggregate", "max")
	d.MustAdd("qCount", "Query").SetAttr("sensor", "noise").SetAttr("aggregate", "count")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	results := vm.Engine.Tick()
	if len(results) != 3 {
		t.Fatalf("results: %v", results)
	}
	byQuery := map[string]Result{}
	for _, r := range results {
		byQuery[r.Query] = r
	}
	if byQuery["query:device0/qCount"].Value != 4 {
		t.Errorf("count: %v", byQuery["query:device0/qCount"])
	}
	if byQuery["query:device0/qMin"].Value > byQuery["query:device0/qMax"].Value {
		t.Errorf("min > max: %v vs %v", byQuery["query:device0/qMin"], byQuery["query:device0/qMax"])
	}
}

func TestOfflineDevicesShrinkSamples(t *testing.T) {
	vm := newVM(t)
	d := vm.Device.UI.NewDraft()
	d.MustAdd("q1", "Query").SetAttr("sensor", "temp")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Fleet.SetOnline("d1", false); err != nil {
		t.Fatal(err)
	}
	if err := vm.Fleet.SetOnline("d2", false); err != nil {
		t.Fatal(err)
	}
	results := vm.Engine.Tick()
	if results[0].Samples != 2 {
		t.Fatalf("offline devices must not be sampled: %v", results)
	}
}

func TestEngineErrors(t *testing.T) {
	vm := newVM(t)
	if err := vm.Engine.Execute(script.NewCommand("mystery", "q")); err == nil {
		t.Error("unknown op must fail")
	}
	if err := vm.Engine.Execute(script.NewCommand("updateQuery", "ghost")); err == nil {
		t.Error("update of unknown query must fail")
	}
	if err := vm.Engine.Execute(script.NewCommand("stopQuery", "ghost")); err == nil {
		t.Error("stop of unknown query must fail")
	}
	if err := vm.Engine.Execute(script.NewCommand("startQuery", "q").WithArg("sensor", "temp")); err != nil {
		t.Fatal(err)
	}
	if err := vm.Engine.Execute(script.NewCommand("startQuery", "q").WithArg("sensor", "temp")); err == nil {
		t.Error("double start must fail")
	}
}

func TestLinkErrors(t *testing.T) {
	vm := newVM(t)
	l := newLink(newGateway(vm.Provider), "devX")
	if err := l.Execute(script.NewCommand("mystery", "q")); err == nil {
		t.Error("unknown op must fail")
	}
	if err := l.Execute(script.NewCommand("retractQuery", "ghost")); err == nil {
		t.Error("retract of unknown query must fail")
	}
}

func TestMultiDeviceQueriesCoexist(t *testing.T) {
	vm := newVM(t)
	second, err := vm.AddDevice("device1")
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Devices()) != 2 {
		t.Fatalf("devices: %d", len(vm.Devices()))
	}

	d0 := vm.Device.UI.NewDraft()
	d0.MustAdd("q1", "Query").SetAttr("sensor", "temp").SetAttr("region", "north")
	if _, err := d0.Submit(); err != nil {
		t.Fatal(err)
	}
	d1 := second.UI.NewDraft()
	d1.MustAdd("q1", "Query").SetAttr("sensor", "noise") // same local ID on purpose
	if _, err := d1.Submit(); err != nil {
		t.Fatal(err)
	}

	// Both queries are active at the provider, namespaced by device.
	active := vm.Engine.ActiveQueries()
	if len(active) != 2 {
		t.Fatalf("active: %v", active)
	}
	results := vm.Engine.Tick()
	if len(results) != 2 {
		t.Fatalf("results: %v", results)
	}

	// Device 0 cancelling its query must not disturb device 1's.
	edit := vm.Device.UI.EditDraft()
	if err := edit.Remove("q1"); err != nil {
		t.Fatal(err)
	}
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	active = vm.Engine.ActiveQueries()
	if len(active) != 1 || !strings.Contains(active[0], "device1") {
		t.Fatalf("after cancel: %v", active)
	}
	// Results are broadcast to every device without error.
	if got := vm.Engine.Tick(); len(got) != 1 {
		t.Fatalf("rounds after cancel: %v", got)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() []Result {
		vm := newVM(t)
		d := vm.Device.UI.NewDraft()
		d.MustAdd("q1", "Query").SetAttr("sensor", "temp")
		if _, err := d.Submit(); err != nil {
			t.Fatal(err)
		}
		var out []Result
		for i := 0; i < 5; i++ {
			out = append(out, vm.Engine.Tick()...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCoverageComplete(t *testing.T) {
	for _, tc := range []struct {
		name string
		def  core.Definition
	}{
		{"provider", core.Definition{Name: "p", DSML: Metamodel(), Middleware: ProviderModel(),
			DSK: core.DSK{LTSes: map[string]*lts.LTS{ProviderLTSName: ProviderLTS()}}}},
		{"device", core.Definition{Name: "d", DSML: Metamodel(), Middleware: DeviceModel(),
			DSK: core.DSK{LTSes: map[string]*lts.LTS{DeviceLTSName: DeviceLTS()}}}},
	} {
		cov, err := core.AnalyzeCoverage(tc.def)
		if err != nil {
			t.Fatal(err)
		}
		if !cov.Complete() {
			t.Fatalf("%s coverage incomplete: %v", tc.name, cov.UnroutableOps)
		}
	}
}
