// Package csense implements CSML and the Crowdsensing Virtual Machine
// (CSVM) on top of the MD-DSM core (paper §IV-D). CSML models represent
// crowdsensing queries; the CSVM interprets them to drive the acquisition
// of sensing data from participating devices and the processing that
// produces query results. For long-running queries, on-the-fly changes to
// the user's model dynamically reflect on the execution of the query.
//
// Deployment mirrors the paper's split: the configuration running on a
// mobile device has all four layers (users author query models there),
// while the provider runs the three bottom layers — its Synthesis layer
// receives query models shipped from devices and synthesises fleet-level
// execution.
package csense

import (
	"fmt"
	"strings"
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	"github.com/mddsm/mddsm/internal/resources/sensing"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// MetamodelName identifies the CSML metamodel.
const MetamodelName = "csml"

// Domain is the classifier-domain name.
const Domain = "csense"

// LTS names for the two deployments.
const (
	DeviceLTSName   = "csml-device"
	ProviderLTSName = "csml-provider"
)

// Metamodel builds the CSML metamodel: crowdsensing queries.
func Metamodel() *metamodel.Metamodel {
	m := metamodel.New(MetamodelName)
	m.MustAddEnum(&metamodel.Enum{Name: "Aggregate",
		Literals: []string{"avg", "min", "max", "count"}})
	m.MustAddClass(&metamodel.Class{Name: "Query",
		Attributes: []metamodel.Attribute{
			{Name: "sensor", Kind: metamodel.KindString, Required: true},
			// region filters participating devices ("" matches all).
			{Name: "region", Kind: metamodel.KindString, Default: ""},
			{Name: "aggregate", Kind: metamodel.KindEnum, EnumType: "Aggregate", Default: "avg"},
		},
	})
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("csml metamodel: %v", err))
	}
	return m
}

// DeviceLTS encodes the device-side synthesis semantics: query model
// changes ship the query specification to the provider.
func DeviceLTS() *lts.LTS {
	l := lts.New(DeviceLTSName, "run")
	l.On("run", "add-object:Query", "", "run",
		lts.CommandTemplate{Op: "shipQuery", Target: "query:{id}",
			Args: map[string]string{
				"sensor": "{sensor}", "region": "{region}", "aggregate": "{aggregate}",
			}})
	// Attribute changes re-ship the full (current) specification; the
	// synthesis scope binds every attribute of the changed object.
	l.On("run", "set-attr:Query.region", "", "run",
		lts.CommandTemplate{Op: "shipQuery", Target: "query:{id}",
			Args: map[string]string{
				"sensor": "{sensor}", "region": "{new}", "aggregate": "{aggregate}",
			}})
	l.On("run", "set-attr:Query.aggregate", "", "run",
		lts.CommandTemplate{Op: "shipQuery", Target: "query:{id}",
			Args: map[string]string{
				"sensor": "{sensor}", "region": "{region}", "aggregate": "{new}",
			}})
	l.On("run", "set-attr:Query.sensor", "", "run",
		lts.CommandTemplate{Op: "shipQuery", Target: "query:{id}",
			Args: map[string]string{
				"sensor": "{new}", "region": "{region}", "aggregate": "{aggregate}",
			}})
	l.On("run", "remove-object:Query", "", "run",
		lts.CommandTemplate{Op: "retractQuery", Target: "query:{id}"})
	return l
}

// ProviderLTS encodes the provider-side synthesis semantics over the
// provider's mirror of the active queries.
func ProviderLTS() *lts.LTS {
	l := lts.New(ProviderLTSName, "run")
	l.On("run", "add-object:Query", "", "run",
		lts.CommandTemplate{Op: "startQuery", Target: "query:{id}",
			Args: map[string]string{
				"sensor": "{sensor}", "region": "{region}", "aggregate": "{aggregate}",
			}})
	for _, attr := range []string{"sensor", "region", "aggregate"} {
		args := map[string]string{
			"sensor": "{sensor}", "region": "{region}", "aggregate": "{aggregate}",
		}
		args[attr] = "{new}"
		l.On("run", "set-attr:Query."+attr, "", "run",
			lts.CommandTemplate{Op: "updateQuery", Target: "query:{id}", Args: args})
	}
	l.On("run", "remove-object:Query", "", "run",
		lts.CommandTemplate{Op: "stopQuery", Target: "query:{id}"})
	return l
}

// querySpec is one active query at the engine.
type querySpec struct {
	ID        string
	Sensor    string
	Region    string
	Aggregate string
}

// Result is one query-round outcome.
type Result struct {
	Query   string
	Value   float64
	Samples int
	Round   int
}

// Engine executes active queries over the simulated fleet: the provider
// broker's resource. Each Tick runs one acquisition round per active query
// and emits queryResult events.
type Engine struct {
	mu     sync.Mutex
	fleet  *sensing.Fleet
	active map[string]*querySpec
	rounds map[string]int
	sink   func(Result)
}

// NewEngine builds an engine over a fleet. sink receives round results and
// may be nil.
func NewEngine(fleet *sensing.Fleet, sink func(Result)) *Engine {
	return &Engine{
		fleet:  fleet,
		active: make(map[string]*querySpec),
		rounds: make(map[string]int),
		sink:   sink,
	}
}

// Execute implements broker.Adapter for the provider's broker.
func (e *Engine) Execute(cmd script.Command) error {
	id := cmd.Target
	switch cmd.Op {
	case "startQuery", "updateQuery":
		e.mu.Lock()
		defer e.mu.Unlock()
		if cmd.Op == "startQuery" {
			if _, ok := e.active[id]; ok {
				return fmt.Errorf("csense engine: query %q already active", id)
			}
		} else if _, ok := e.active[id]; !ok {
			return fmt.Errorf("csense engine: update of unknown query %q", id)
		}
		e.active[id] = &querySpec{
			ID:        id,
			Sensor:    cmd.StringArg("sensor"),
			Region:    cmd.StringArg("region"),
			Aggregate: cmd.StringArg("aggregate"),
		}
		return nil
	case "stopQuery":
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, ok := e.active[id]; !ok {
			return fmt.Errorf("csense engine: stop of unknown query %q", id)
		}
		delete(e.active, id)
		delete(e.rounds, id)
		return nil
	default:
		return fmt.Errorf("csense engine: unknown op %q", cmd.Op)
	}
}

// ActiveQueries returns the IDs of active queries sorted by ID order of
// the underlying map iteration made deterministic.
func (e *Engine) ActiveQueries() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.active))
	for id := range e.active {
		out = append(out, id)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Tick runs one acquisition round for every active query, in ID order.
func (e *Engine) Tick() []Result {
	e.mu.Lock()
	specs := make([]*querySpec, 0, len(e.active))
	for _, s := range e.active {
		specs = append(specs, s)
	}
	e.mu.Unlock()
	// Deterministic order.
	for i := 1; i < len(specs); i++ {
		for j := i; j > 0 && specs[j].ID < specs[j-1].ID; j-- {
			specs[j], specs[j-1] = specs[j-1], specs[j]
		}
	}
	var out []Result
	for _, s := range specs {
		readings := e.fleet.SampleAll(s.Sensor, s.Region)
		r := Result{Query: s.ID, Samples: len(readings)}
		switch s.Aggregate {
		case "count":
			r.Value = float64(len(readings))
		case "min":
			for i, rd := range readings {
				if i == 0 || rd.Value < r.Value {
					r.Value = rd.Value
				}
			}
		case "max":
			for i, rd := range readings {
				if i == 0 || rd.Value > r.Value {
					r.Value = rd.Value
				}
			}
		default: // avg
			sum := 0.0
			for _, rd := range readings {
				sum += rd.Value
			}
			if len(readings) > 0 {
				r.Value = sum / float64(len(readings))
			}
		}
		e.mu.Lock()
		e.rounds[s.ID]++
		r.Round = e.rounds[s.ID]
		e.mu.Unlock()
		out = append(out, r)
		if e.sink != nil {
			e.sink(r)
		}
	}
	return out
}

// ProviderModel authors the provider middleware model: Synthesis +
// Controller + Broker (no UI — models are created on devices).
func ProviderModel() *metamodel.Model {
	b := mwmeta.NewBuilder("CSVM-provider", Domain)
	b.SynthesisLayer("PSE", ProviderLTSName)
	b.ControllerLayer("PCM").
		PassthroughAction("queries", "startQuery,updateQuery,stopQuery", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Done().
		BrokerLayer("PSB").
		PassthroughAction("engine", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "engine")
	return b.Model()
}

// DeviceModel authors the device middleware model: all four layers; the
// broker's resource is the link to the provider.
func DeviceModel() *metamodel.Model {
	b := mwmeta.NewBuilder("CSVM-device", Domain)
	b.UILayer("DUI")
	b.SynthesisLayer("DSE", DeviceLTSName)
	b.ControllerLayer("DCM").
		PassthroughAction("ship", "shipQuery,retractQuery", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Done().
		BrokerLayer("DLB").
		PassthroughAction("uplink", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "providerLink")
	return b.Model()
}

// gateway is the provider's uplink endpoint: it maintains the union
// mirror of all devices' shipped queries as a provider-side CSML model and
// submits it to the provider's Synthesis layer — the model itself travels
// between the deployments. All device links share one gateway so queries
// from different devices coexist.
type gateway struct {
	mu       sync.Mutex
	provider *runtime.Platform
	mirror   *metamodel.Model
}

func newGateway(provider *runtime.Platform) *gateway {
	return &gateway{provider: provider, mirror: metamodel.NewModel(MetamodelName)}
}

// link is one device broker's adapter into the shared gateway. Query IDs
// are namespaced by device so two devices' models cannot collide.
type link struct {
	gw     *gateway
	device string
}

func newLink(gw *gateway, device string) *link {
	return &link{gw: gw, device: device}
}

// Execute implements broker.Adapter.
func (l *link) Execute(cmd script.Command) error {
	l.gw.mu.Lock()
	defer l.gw.mu.Unlock()
	// The device ships "query:<id>" targets; the mirror stores bare IDs
	// (namespaced by device) so the provider's own synthesis re-derives
	// the prefixed target.
	id := l.device + "/" + strings.TrimPrefix(cmd.Target, "query:")
	switch cmd.Op {
	case "shipQuery":
		o := l.gw.mirror.Get(id)
		if o == nil {
			o = l.gw.mirror.NewObject(id, "Query")
		}
		o.SetAttr("sensor", cmd.StringArg("sensor"))
		o.SetAttr("region", cmd.StringArg("region"))
		o.SetAttr("aggregate", cmd.StringArg("aggregate"))
	case "retractQuery":
		if err := l.gw.mirror.Delete(id); err != nil {
			return fmt.Errorf("csense link: %w", err)
		}
	default:
		return fmt.Errorf("csense link: unknown op %q", cmd.Op)
	}
	_, err := l.gw.provider.SubmitModel(l.gw.mirror)
	return err
}

// CSVM is a complete crowdsensing deployment: one or more device
// platforms, the provider platform, the query engine and the simulated
// fleet. Device is the default device created by New; AddDevice spawns
// further participating devices, whose query models coexist at the
// provider.
type CSVM struct {
	Device   *runtime.Platform
	Provider *runtime.Platform
	Engine   *Engine
	Fleet    *sensing.Fleet

	gw      *gateway
	mu      sync.Mutex
	devices []*runtime.Platform
	results []Result
}

// New builds a CSVM over a fleet seeded deterministically.
func New(seed int64) (*CSVM, error) {
	vm := &CSVM{Fleet: sensing.NewFleet(nil, seed)}
	vm.Engine = NewEngine(vm.Fleet, func(r Result) {
		vm.mu.Lock()
		vm.results = append(vm.results, r)
		vm.mu.Unlock()
		// Results travel back to every participating device as events.
		for _, dev := range vm.Devices() {
			_ = dev.DeliverEvent(broker.Event{Name: "queryResult", Attrs: map[string]any{
				"query": r.Query, "value": r.Value, "samples": r.Samples, "round": r.Round,
			}})
		}
	})

	provider, err := core.Build(core.Definition{
		Name:       "csvm-provider",
		DSML:       Metamodel(),
		Middleware: ProviderModel(),
		DSK: core.DSK{
			LTSes:    map[string]*lts.LTS{ProviderLTSName: ProviderLTS()},
			Adapters: map[string]broker.Adapter{"engine": vm.Engine},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("csvm provider: %w", err)
	}
	vm.Provider = provider

	vm.gw = newGateway(provider)
	device, err := vm.AddDevice("device0")
	if err != nil {
		return nil, err
	}
	vm.Device = device
	return vm, nil
}

// AddDevice spawns another participating device platform (all four
// layers). Its user authors query models independently; the shared gateway
// unions them at the provider.
func (vm *CSVM) AddDevice(name string) (*runtime.Platform, error) {
	device, err := core.Build(core.Definition{
		Name:       "csvm-" + name,
		DSML:       Metamodel(),
		Middleware: DeviceModel(),
		DSK: core.DSK{
			LTSes:    map[string]*lts.LTS{DeviceLTSName: DeviceLTS()},
			Adapters: map[string]broker.Adapter{"providerLink": newLink(vm.gw, name)},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("csvm device %s: %w", name, err)
	}
	vm.mu.Lock()
	vm.devices = append(vm.devices, device)
	vm.mu.Unlock()
	return device, nil
}

// Devices returns all device platforms, in creation order.
func (vm *CSVM) Devices() []*runtime.Platform {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return append([]*runtime.Platform(nil), vm.devices...)
}

// Results returns a copy of all delivered round results.
func (vm *CSVM) Results() []Result {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return append([]Result(nil), vm.results...)
}
