package csense

import (
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/domains"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/resources/sensing"
	"github.com/mddsm/mddsm/internal/runtime"
)

// sharedDSML memoises the CSML metamodel so instances provisioned through
// the bundle registry share one compiled conformance validator.
var sharedDSML = sync.OnceValue(Metamodel)

func init() {
	domains.Register(domains.Bundle{
		Name: "csense",
		Doc:  "crowdsensing provider platform (CSVM): query synthesis and fleet acquisition over a simulated device fleet",
		Assemble: func(cfg domains.Config) (*domains.Instance, error) {
			// The bundle provisions the provider configuration (the three
			// bottom layers, paper §IV-D): query models are submitted into
			// its Synthesis layer and executed against a deterministic
			// simulated fleet. Round results come back up as
			// top-of-stack "queryResult" events.
			fleet := sensing.NewFleet(nil, 1)
			var (
				mu       sync.Mutex
				platform *runtime.Platform
			)
			engine := NewEngine(fleet, func(r Result) {
				mu.Lock()
				p := platform
				mu.Unlock()
				if p != nil {
					_ = p.DeliverEvent(broker.Event{Name: "queryResult", Attrs: map[string]any{
						"query": r.Query, "value": r.Value, "samples": r.Samples, "round": r.Round,
					}})
				}
			})
			def := core.Definition{
				Name:       "csvm-provider",
				DSML:       sharedDSML(),
				Middleware: ProviderModel(),
				DSK: core.DSK{
					LTSes:    map[string]*lts.LTS{ProviderLTSName: ProviderLTS()},
					Adapters: map[string]broker.Adapter{"engine": engine},
				},
				Obs:        cfg.Obs,
				Injector:   cfg.Injector,
				Resilience: cfg.Resilience,
			}
			return domains.NewInstance(def,
				func() string { return fleet.Trace().String() },
				func(p *runtime.Platform, _ bool) {
					mu.Lock()
					platform = p
					mu.Unlock()
				},
			), nil
		},
	})
}
