package domains_test

import (
	"sort"
	"testing"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/domains"
	_ "github.com/mddsm/mddsm/internal/domains/all"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/runtime"
)

func TestRegistryHasBuiltinBundles(t *testing.T) {
	// Contains-check rather than exact equality: processes may register
	// synthetic bundles (internal/domgen) alongside the built-ins.
	want := []string{"cml", "csense", "mgrid", "smartspace"}
	got := domains.Names()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("Names() = %v, not sorted", got)
	}
	for _, name := range want {
		b, ok := domains.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if b.Doc == "" {
			t.Errorf("bundle %q has no doc line", name)
		}
	}
}

func TestNewRejectsUnknownBundle(t *testing.T) {
	if _, err := domains.New("nope", domains.Config{}); err == nil {
		t.Fatal("New(nope) succeeded, want error")
	}
	if _, err := domains.Restore("nope", nil, domains.Config{}); err == nil {
		t.Fatal("Restore(nope) succeeded, want error")
	}
}

// TestEveryBundleBuilds provisions each registered bundle fresh and checks
// the instance invariants hold: live platform, non-nil trace.
func TestEveryBundleBuilds(t *testing.T) {
	for _, name := range domains.Names() {
		inst, err := domains.New(name, domains.Config{})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if inst.Platform == nil {
			t.Fatalf("New(%s): nil platform", name)
		}
		if inst.Bundle != name {
			t.Errorf("New(%s): Bundle = %q", name, inst.Bundle)
		}
		_ = inst.Trace() // must not panic
		inst.Close()
	}
}

// cmlSession drafts the canonical two-party audio session model against a
// cml instance.
func cmlSession(t *testing.T, inst *domains.Instance) *metamodel.Model {
	t.Helper()
	d := inst.Platform.UI.NewDraft()
	d.MustAdd("alice", "Person").SetAttr("name", "Alice")
	d.MustAdd("bob", "Person").SetAttr("name", "Bob")
	d.MustAdd("s1", "Session").
		SetRef("participants", "alice", "bob").
		SetRef("streams", "a1")
	d.MustAdd("a1", "Stream").
		SetAttr("media", "audio").
		SetAttr("bandwidth", 64).
		SetAttr("session", "s1")
	return d.Model()
}

// TestRestoreRoundtripDiffEqual is the unified restore path's contract: a
// platform checkpointed, restored through domains.Restore and checkpointed
// again produces equivalent snapshots (modulo the live generator counters
// runtime.SnapshotsEquivalent documents).
func TestRestoreRoundtripDiffEqual(t *testing.T) {
	inst, err := domains.New("cml", domains.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.Platform.SubmitModel(cmlSession(t, inst)); err != nil {
		t.Fatal(err)
	}
	inst.Platform.Broker.Context().Set("securityLevel", 2.0)

	snap, err := inst.Platform.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := domains.Restore("cml", snap, domains.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	snap2, err := restored.Platform.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	same, err := runtime.SnapshotsEquivalent(snap, snap2)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("restore roundtrip drifted:\n first=%s\nsecond=%s", snap, snap2)
	}
	if got := restored.Platform.Synthesis.State(); got != inst.Platform.Synthesis.State() {
		t.Errorf("restored LTS state = %q, want %q", got, inst.Platform.Synthesis.State())
	}
}

// TestRestoreReattachesShell checks the attach hook runs on restore: a
// restored mgrid instance keeps delivering shell events into the platform
// and reseeds its default context.
func TestRestoreReattachesShell(t *testing.T) {
	inst, err := domains.New("mgrid", domains.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	snap, err := inst.Platform.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := domains.Restore("mgrid", snap, domains.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if _, ok := restored.Platform.Broker.Context().Get("batteryCharge"); !ok {
		t.Error("restored mgrid lost its batteryCharge context seed")
	}
	if err := restored.Platform.DeliverEvent(broker.Event{Name: "telemetry", Attrs: map[string]any{}}); err != nil {
		t.Errorf("restored platform rejects events: %v", err)
	}
}
