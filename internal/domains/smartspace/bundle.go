package smartspace

import (
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/domains"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/runtime"
)

// sharedDSML memoises the 2SML metamodel so instances provisioned through
// the bundle registry share one compiled conformance validator.
var sharedDSML = sync.OnceValue(Metamodel)

func init() {
	domains.Register(domains.Bundle{
		Name: "smartspace",
		Doc:  "smart-space central platform (2SVM): users, objects and rules over a simulated space fabric",
		Assemble: func(cfg domains.Config) (*domains.Instance, error) {
			hub := NewHub()
			def := core.Definition{
				Name:       "2svm",
				DSML:       sharedDSML(),
				Middleware: CentralModel(),
				DSK: core.DSK{
					LTSes:    map[string]*lts.LTS{LTSName: SynthesisLTS()},
					Adapters: map[string]broker.Adapter{"hub": hub},
				},
				Obs:        cfg.Obs,
				Injector:   cfg.Injector,
				Resilience: cfg.Resilience,
			}
			return domains.NewInstance(def,
				func() string { return hub.Space().Trace().String() },
				func(p *runtime.Platform, _ bool) {
					hub.central = func(e broker.Event) { _ = p.DeliverEvent(e) }
				},
			), nil
		},
	})
}
