package smartspace

import (
	"strings"
	"testing"

	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/script"
)

func TestDefinitionValidates(t *testing.T) {
	def := core.Definition{
		Name:       "2svm",
		DSML:       Metamodel(),
		Middleware: CentralModel(),
		DSK: core.DSK{
			LTSes: map[string]*lts.LTS{LTSName: SynthesisLTS()},
		},
	}
	if err := def.Validate(); err != nil {
		t.Fatalf("2SVM definition must validate: %v", err)
	}
}

func newSSVM(t *testing.T) *SSVM {
	t.Helper()
	vm, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestRuleDrivenSpaceBehaviour(t *testing.T) {
	vm := newSSVM(t)

	// The user models: when anything enters the space, turn lamp1 on.
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("ana", "User").SetAttr("name", "Ana")
	d.MustAdd("lamp1", "ObjectDecl").SetAttr("kind", "lamp")
	d.MustAdd("welcome", "Rule").
		SetAttr("onEvent", "objectEntered").
		SetAttr("subject", "badge1").
		SetAttr("targetObject", "lamp1").
		SetAttr("prop", "on").
		SetAttr("value", "true")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}

	// Physical objects arrive: first the lamp (so its node exists), then
	// the badge that triggers the rule.
	if err := vm.Hub.ObjectEnters("lamp1", "lamp"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Hub.ObjectEnters("badge1", "badge"); err != nil {
		t.Fatal(err)
	}

	o, ok := vm.Hub.Space().Object("lamp1")
	if !ok {
		t.Fatal("lamp1 unknown")
	}
	if v, _ := o.Prop("on"); v != true {
		t.Fatalf("rule must have turned the lamp on: %v", v)
	}
	if vm.Hub.NodeCount() != 2 {
		t.Errorf("nodes: %d", vm.Hub.NodeCount())
	}
	// The configuration travelled through the object node's two-layer
	// platform down to the space.
	if !strings.Contains(vm.Hub.Space().Trace().String(), `setProperty object:lamp1 prop="on" value=true`) {
		t.Errorf("space trace:\n%s", vm.Hub.Space().Trace())
	}
}

func TestSubjectFilteringAndDisarm(t *testing.T) {
	vm := newSSVM(t)
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("lamp1", "ObjectDecl").SetAttr("kind", "lamp")
	d.MustAdd("r1", "Rule").
		SetAttr("onEvent", "objectEntered").
		SetAttr("subject", "badge1").
		SetAttr("targetObject", "lamp1").
		SetAttr("prop", "on").
		SetAttr("value", "true")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Hub.ObjectEnters("lamp1", "lamp"); err != nil {
		t.Fatal(err)
	}
	// A different badge does not match the subject.
	if err := vm.Hub.ObjectEnters("badge2", "badge"); err != nil {
		t.Fatal(err)
	}
	o, _ := vm.Hub.Space().Object("lamp1")
	if _, set := o.Prop("on"); set {
		t.Fatal("rule must not fire for a non-matching subject")
	}

	// models@runtime: removing the rule disarms it.
	edit := vm.Platform.UI.EditDraft()
	if err := edit.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := edit.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Hub.ObjectEnters("badge1", "badge"); err != nil {
		t.Fatal(err)
	}
	o, _ = vm.Hub.Space().Object("lamp1")
	if _, set := o.Prop("on"); set {
		t.Fatal("disarmed rule must not fire")
	}
}

func TestLeaveRule(t *testing.T) {
	vm := newSSVM(t)
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("lamp1", "ObjectDecl").SetAttr("kind", "lamp")
	d.MustAdd("bye", "Rule").
		SetAttr("onEvent", "objectLeft").
		SetAttr("subject", "*").
		SetAttr("targetObject", "lamp1").
		SetAttr("prop", "on").
		SetAttr("value", "false")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := vm.Hub.ObjectEnters("lamp1", "lamp"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Hub.ObjectEnters("badge1", "badge"); err != nil {
		t.Fatal(err)
	}
	if err := vm.Hub.ObjectLeaves("badge1"); err != nil {
		t.Fatal(err)
	}
	o, _ := vm.Hub.Space().Object("lamp1")
	if v, _ := o.Prop("on"); v != false {
		t.Fatalf("leave rule must turn the lamp off: %v", v)
	}
}

func TestDirectSetPropDispatch(t *testing.T) {
	vm := newSSVM(t)
	if err := vm.Hub.ObjectEnters("therm", "thermostat"); err != nil {
		t.Fatal(err)
	}
	// Drive the central controller directly with a setProp script (the
	// path a ubiquitous application would use).
	s := script.New("cfg").Append(
		script.NewCommand("setProp", "object:therm").
			WithArg("prop", "setpoint").
			WithArg("value", 21.5),
	)
	if err := vm.Platform.Execute(s); err != nil {
		t.Fatal(err)
	}
	o, _ := vm.Hub.Space().Object("therm")
	if v, _ := o.Prop("setpoint"); v != 21.5 {
		t.Fatalf("setpoint: %v", v)
	}
}

func TestRuleForMissingNodeSurfacesEvent(t *testing.T) {
	vm := newSSVM(t)
	d := vm.Platform.UI.NewDraft()
	d.MustAdd("r1", "Rule").
		SetAttr("onEvent", "objectEntered").
		SetAttr("subject", "*").
		SetAttr("targetObject", "ghostLamp").
		SetAttr("prop", "on").
		SetAttr("value", "true")
	if _, err := d.Submit(); err != nil {
		t.Fatal(err)
	}
	// Entering any object fires the rule whose target has no node; the
	// fabric reports ruleFailed to the central platform, which simply has
	// no handler for it (evented, not fatal).
	if err := vm.Hub.ObjectEnters("badge1", "badge"); err != nil {
		t.Fatal(err)
	}
}

func TestHubErrors(t *testing.T) {
	h := NewHub()
	if err := h.Execute(script.NewCommand("mystery", "t")); err == nil {
		t.Error("unknown op must fail")
	}
	if err := h.Execute(script.NewCommand("setProp", "object:ghost").WithArg("prop", "p").WithArg("value", 1)); err == nil {
		t.Error("setProp on unknown node must fail")
	}
	if err := h.ObjectLeaves("ghost"); err == nil {
		t.Error("leave of unknown object must fail")
	}
	// Re-entry reuses the node.
	if err := h.ObjectEnters("o1", "lamp"); err != nil {
		t.Fatal(err)
	}
	if err := h.ObjectLeaves("o1"); err != nil {
		t.Fatal(err)
	}
	if err := h.ObjectEnters("o1", ""); err != nil {
		t.Fatal(err)
	}
	if h.NodeCount() != 1 {
		t.Errorf("nodes: %d", h.NodeCount())
	}
}

func TestCoverageComplete(t *testing.T) {
	def := core.Definition{
		Name: "2svm", DSML: Metamodel(), Middleware: CentralModel(),
		DSK: core.DSK{LTSes: map[string]*lts.LTS{LTSName: SynthesisLTS()}},
	}
	cov, err := core.AnalyzeCoverage(def)
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() {
		t.Fatalf("2SVM coverage incomplete: %v", cov.UnroutableOps)
	}
}
