// Package smartspace implements 2SML and the Smart Spaces Virtual Machine
// (2SVM) on top of the MD-DSM core (paper §IV-C). The language constructs
// represent the main kinds of elements of a smart space — users, smart
// objects and ubiquitous applications (rules) — and the execution engine
// configures the programmable entities of the space.
//
// The deployment mirrors the paper's layer split: the central controller
// node runs the top layers (UI, SE, Controller) with a dispatch Broker
// whose "resource" is the space fabric, while each smart object runs a
// layer-suppressed node platform (Controller + Broker only). Synthesised
// control scripts are dispatched from the central node to the object
// nodes, and object-node scripts installed at the middleware layer execute
// when asynchronous events (such as objects entering the space) occur.
package smartspace

import (
	"fmt"
	"sync"

	"github.com/mddsm/mddsm/internal/broker"
	"github.com/mddsm/mddsm/internal/core"
	"github.com/mddsm/mddsm/internal/lts"
	"github.com/mddsm/mddsm/internal/metamodel"
	"github.com/mddsm/mddsm/internal/mwmeta"
	spaceres "github.com/mddsm/mddsm/internal/resources/smartspace"
	"github.com/mddsm/mddsm/internal/runtime"
	"github.com/mddsm/mddsm/internal/script"
)

// MetamodelName identifies the 2SML metamodel.
const MetamodelName = "2sml"

// Domain is the classifier-domain name.
const Domain = "smartspace"

// LTSName names the synthesis semantics.
const LTSName = "2sml-synthesis"

// Metamodel builds the 2SML metamodel: users, smart-object declarations
// and rules (the ubiquitous applications binding space events to object
// configuration).
func Metamodel() *metamodel.Metamodel {
	m := metamodel.New(MetamodelName)
	m.MustAddEnum(&metamodel.Enum{Name: "SpaceEvent",
		Literals: []string{"objectEntered", "objectLeft"}})
	m.MustAddClass(&metamodel.Class{Name: "User",
		Attributes: []metamodel.Attribute{
			{Name: "name", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: "ObjectDecl",
		Attributes: []metamodel.Attribute{
			{Name: "kind", Kind: metamodel.KindString, Required: true},
		},
	})
	m.MustAddClass(&metamodel.Class{Name: "Rule",
		Attributes: []metamodel.Attribute{
			{Name: "onEvent", Kind: metamodel.KindEnum, EnumType: "SpaceEvent", Required: true},
			// subject is the object whose event triggers the rule ("*"
			// matches any object).
			{Name: "subject", Kind: metamodel.KindString, Default: "*"},
			{Name: "targetObject", Kind: metamodel.KindString, Required: true},
			{Name: "prop", Kind: metamodel.KindString, Required: true},
			{Name: "value", Kind: metamodel.KindString, Required: true},
		},
	})
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("2sml metamodel: %v", err))
	}
	return m
}

// SynthesisLTS encodes the 2SML synthesis semantics.
func SynthesisLTS() *lts.LTS {
	l := lts.New(LTSName, "run")
	l.On("run", "add-object:ObjectDecl", "", "run",
		lts.CommandTemplate{Op: "watchObject", Target: "object:{id}",
			Args: map[string]string{"kind": "{kind}"}})
	l.On("run", "remove-object:ObjectDecl", "", "run",
		lts.CommandTemplate{Op: "unwatchObject", Target: "object:{id}"})
	l.On("run", "add-object:Rule", "", "run",
		lts.CommandTemplate{Op: "armRule", Target: "rule:{id}",
			Args: map[string]string{
				"onEvent": "{onEvent}", "subject": "{subject}",
				"targetObject": "{targetObject}", "prop": "{prop}", "value": "{value}",
			}})
	l.On("run", "remove-object:Rule", "", "run",
		lts.CommandTemplate{Op: "disarmRule", Target: "rule:{id}"})
	return l
}

// rule is an armed trigger held by the hub.
type rule struct {
	id      string
	onEvent string
	subject string
	target  string
	prop    string
	value   any
}

// Hub is the smart-space fabric: it owns the simulated space, spawns one
// layer-suppressed node platform per smart object, dispatches configuration
// scripts to them, and routes space events — executing armed rules and
// escalating events to the central platform.
type Hub struct {
	mu      sync.Mutex
	space   *spaceres.Space
	nodes   map[string]*runtime.Platform
	rules   map[string]rule
	central func(broker.Event) // escalation to the central platform
}

// NewHub builds the fabric over a fresh space.
func NewHub() *Hub {
	h := &Hub{
		nodes: make(map[string]*runtime.Platform),
		rules: make(map[string]rule),
	}
	h.space = spaceres.NewSpace(h.onSpaceEvent)
	return h
}

// Space returns the underlying simulated space.
func (h *Hub) Space() *spaceres.Space { return h.space }

// NodeCount returns the number of spawned object node platforms.
func (h *Hub) NodeCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.nodes)
}

// ObjectEnters brings an object into the space, spawning its node platform
// on first entry (each smart object runs the two bottom layers).
func (h *Hub) ObjectEnters(id, kind string) error {
	h.mu.Lock()
	if _, ok := h.nodes[id]; !ok {
		node, err := newObjectNode(h.space, id)
		if err != nil {
			h.mu.Unlock()
			return err
		}
		h.nodes[id] = node
	}
	h.mu.Unlock()
	return h.space.Enter(id, kind)
}

// ObjectLeaves removes an object from the space (its node survives for
// re-entry).
func (h *Hub) ObjectLeaves(id string) error { return h.space.Leave(id) }

// onSpaceEvent routes an asynchronous space event: armed rules fire
// configuration scripts on target object nodes, then the event escalates
// to the central platform.
func (h *Hub) onSpaceEvent(e spaceres.Event) {
	h.mu.Lock()
	matched := make([]rule, 0, 2)
	for _, r := range h.rules {
		if r.onEvent == e.Kind && (r.subject == "*" || r.subject == e.Str("object")) {
			matched = append(matched, r)
		}
	}
	h.mu.Unlock()
	for _, r := range matched {
		// Dispatch the synthesised configuration to the target node's
		// middleware layer. Errors are surfaced as fabric events.
		if err := h.dispatchSetProperty(r.target, r.prop, r.value); err != nil && h.central != nil {
			h.central(broker.Event{Name: "ruleFailed", Attrs: map[string]any{
				"rule": r.id, "error": err.Error(),
			}})
		}
	}
	if h.central != nil {
		h.central(broker.Event{Name: e.Kind, Attrs: map[string]any{
			"object": e.Str("object"), "prop": e.Str("prop"),
		}})
	}
}

// dispatchSetProperty sends a setProp script to an object node.
func (h *Hub) dispatchSetProperty(objectID, prop string, value any) error {
	h.mu.Lock()
	node, ok := h.nodes[objectID]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("smartspace hub: no node for object %q", objectID)
	}
	s := script.New("cfg-" + objectID).Append(
		script.NewCommand("setProp", "object:"+objectID).
			WithArg("prop", prop).
			WithArg("value", value),
	)
	return node.Execute(s)
}

// Execute implements broker.Adapter for the central platform's dispatch
// broker.
func (h *Hub) Execute(cmd script.Command) error {
	switch cmd.Op {
	case "watchObject", "unwatchObject":
		// Declarations acknowledge interest; the fabric tracks presence
		// through the space itself.
		return nil
	case "armRule":
		h.mu.Lock()
		defer h.mu.Unlock()
		id := cmd.Target
		h.rules[id] = rule{
			id:      id,
			onEvent: cmd.StringArg("onEvent"),
			subject: cmd.StringArg("subject"),
			target:  cmd.StringArg("targetObject"),
			prop:    cmd.StringArg("prop"),
			value:   script.ParseScalar(cmd.StringArg("value")),
		}
		return nil
	case "disarmRule":
		h.mu.Lock()
		defer h.mu.Unlock()
		delete(h.rules, cmd.Target)
		return nil
	case "setProp":
		// Direct configuration dispatched from the central node.
		target := cmd.Target
		if len(target) > 7 && target[:7] == "object:" {
			target = target[7:]
		}
		v, _ := cmd.Arg("value")
		return h.dispatchSetProperty(target, cmd.StringArg("prop"), v)
	default:
		return fmt.Errorf("smartspace hub: unknown op %q", cmd.Op)
	}
}

// spaceAdapter is the object node's broker adapter: it applies property
// changes to the simulated space.
type spaceAdapter struct {
	space *spaceres.Space
}

func (a spaceAdapter) Execute(cmd script.Command) error {
	target := cmd.Target
	if len(target) > 7 && target[:7] == "object:" {
		target = target[7:]
	}
	switch cmd.Op {
	case "applyProperty":
		v, _ := cmd.Arg("value")
		return a.space.SetProperty(target, cmd.StringArg("prop"), v)
	default:
		return fmt.Errorf("smartspace node adapter: unknown op %q", cmd.Op)
	}
}

// newObjectNode builds the layer-suppressed platform running on one smart
// object: Controller + Broker, driven by dispatched scripts.
func newObjectNode(space *spaceres.Space, objectID string) (*runtime.Platform, error) {
	b := mwmeta.NewBuilder("2svm-node-"+objectID, Domain)
	b.ControllerLayer("mw").
		PassthroughAction("setProp", "setProp", "",
			mwmeta.StepSpec{Op: "applyProperty", Target: "{target}"}).
		Done().
		BrokerLayer("broker").
		PassthroughAction("apply", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "space")
	return runtime.Build(b.Model(), runtime.Deps{
		Adapters: map[string]broker.Adapter{"space": spaceAdapter{space: space}},
	})
}

// CentralModel authors the middleware model of the central controller node
// (the top three layers plus the dispatch broker fronting the fabric).
func CentralModel() *metamodel.Model {
	b := mwmeta.NewBuilder("2SVM", Domain)
	b.UILayer("SUI")
	b.SynthesisLayer("SSE", LTSName)
	b.ControllerLayer("SMW").
		PassthroughAction("fabric", "watchObject,unwatchObject,armRule,disarmRule,setProp", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Done().
		BrokerLayer("SDB").
		PassthroughAction("dispatch", "*", "",
			mwmeta.StepSpec{Op: "{op}", Target: "{target}"}).
		Bind("*", "hub")
	return b.Model()
}

// SSVM is the smart-space virtual machine: the central platform plus the
// fabric of object nodes.
type SSVM struct {
	Platform *runtime.Platform
	Hub      *Hub
}

// New builds a 2SVM deployment.
func New() (*SSVM, error) {
	hub := NewHub()
	def := core.Definition{
		Name:       "2svm",
		DSML:       Metamodel(),
		Middleware: CentralModel(),
		DSK: core.DSK{
			LTSes:    map[string]*lts.LTS{LTSName: SynthesisLTS()},
			Adapters: map[string]broker.Adapter{"hub": hub},
		},
	}
	p, err := core.Build(def)
	if err != nil {
		return nil, fmt.Errorf("2svm: %w", err)
	}
	hub.central = func(e broker.Event) { _ = p.DeliverEvent(e) }
	return &SSVM{Platform: p, Hub: hub}, nil
}
